//! Seeded dataset generators and host reference implementations.
//!
//! Every workload draws its inputs from here so that runs are reproducible
//! (the paper evaluates 100 random Dijkstra graphs and 500 QuickSort lists;
//! the bench harness regenerates them from fixed seeds), and every
//! generator has a matching host-side reference algorithm used by the test
//! suite to validate simulator results.

use capsule_core::rng::{Rng, Xoshiro256StarStar};

/// A directed graph with weighted edges, in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Adjacency lists: `adj[u]` = (destination, weight) pairs.
    pub adj: Vec<Vec<(u32, i64)>>,
}

impl Graph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of edges.
    pub fn edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Random connected-ish digraph of `n` nodes: node `i > 0` gets one
    /// incoming edge from a lower-numbered node (so everything is
    /// reachable from 0), plus extra random edges up to `avg_degree`.
    pub fn random(seed: u64, n: usize, avg_degree: usize, max_weight: i64) -> Graph {
        assert!(n > 0 && max_weight > 0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut adj = vec![Vec::new(); n];
        for v in 1..n {
            let u = rng.usize_below(v);
            let w = rng.i64_range_incl(1, max_weight);
            adj[u].push((v as u32, w));
        }
        let extra = n * avg_degree.saturating_sub(1);
        for _ in 0..extra {
            let u = rng.usize_below(n);
            let v = rng.usize_below(n);
            if u == v {
                continue;
            }
            let w = rng.i64_range_incl(1, max_weight);
            adj[u].push((v as u32, w));
        }
        Graph { adj }
    }

    /// A 4-connected grid graph of `side`×`side` cells with random
    /// per-cell base costs — the routing substrate of the vpr analog.
    pub fn grid(seed: u64, side: usize, max_weight: i64) -> Graph {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n = side * side;
        let cost: Vec<i64> = (0..n).map(|_| rng.i64_range_incl(1, max_weight)).collect();
        let mut adj = vec![Vec::new(); n];
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let u = idx(r, c);
                let mut push = |v: usize| adj[u].push((v as u32, cost[v]));
                if r > 0 {
                    push(idx(r - 1, c));
                }
                if r + 1 < side {
                    push(idx(r + 1, c));
                }
                if c > 0 {
                    push(idx(r, c - 1));
                }
                if c + 1 < side {
                    push(idx(r, c + 1));
                }
            }
        }
        Graph { adj }
    }

    /// Host reference: single-source shortest distances from `src`
    /// (Dijkstra with a binary heap); unreachable nodes get `i64::MAX`.
    pub fn shortest_distances(&self, src: usize) -> Vec<i64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![i64::MAX; self.len()];
        let mut heap = BinaryHeap::new();
        dist[src] = 0;
        heap.push(Reverse((0i64, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v as usize)));
                }
            }
        }
        dist
    }
}

/// Input distributions for QuickSort lists (Figure 5 uses "500 lists of
/// various distributions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListShape {
    /// Uniformly random values.
    Uniform,
    /// Already sorted (worst case for naive pivots).
    Sorted,
    /// Reverse sorted.
    Reversed,
    /// Random with many duplicate values.
    FewDistinct,
    /// Sorted runs of random length ("organ pipe"-ish).
    Runs,
}

impl ListShape {
    /// All shapes, cycled by the Figure 5 harness.
    pub const ALL: [ListShape; 5] = [
        ListShape::Uniform,
        ListShape::Sorted,
        ListShape::Reversed,
        ListShape::FewDistinct,
        ListShape::Runs,
    ];
}

/// Generates a list of `n` values with the given shape.
pub fn random_list(seed: u64, n: usize, shape: ListShape) -> Vec<i64> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    match shape {
        ListShape::Uniform => (0..n).map(|_| rng.i64_range(-1_000_000, 1_000_000)).collect(),
        ListShape::Sorted => {
            let mut v: Vec<i64> = (0..n).map(|_| rng.i64_range(-1_000_000, 1_000_000)).collect();
            v.sort_unstable();
            v
        }
        ListShape::Reversed => {
            let mut v: Vec<i64> = (0..n).map(|_| rng.i64_range(-1_000_000, 1_000_000)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        ListShape::FewDistinct => (0..n).map(|_| rng.i64_range(0, 8)).collect(),
        ListShape::Runs => {
            let mut v = Vec::with_capacity(n);
            let mut base = 0i64;
            while v.len() < n {
                let run = (rng.usize_below(60) + 4).min(n - v.len());
                for i in 0..run {
                    v.push(base + i as i64);
                }
                base = rng.i64_range(-1000, 1000);
            }
            v
        }
    }
}

/// Generates LZW input text of `n` bytes over a small alphabet (small
/// alphabets create long dictionary matches, like the paper's 4096-char
/// sequences drawn from gzip's workload).
pub fn lzw_text(seed: u64, n: usize, alphabet: u8) -> Vec<u8> {
    assert!(alphabet >= 2);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    // Markov-ish: repeat recent substrings often to exercise the dictionary.
    while out.len() < n {
        if out.len() > 16 && rng.chance(0.5) {
            let start = rng.usize_below(out.len() - 8);
            let len = (rng.usize_below(12) + 4).min(n - out.len());
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        } else {
            out.push(rng.u64_below(alphabet as u64) as u8);
        }
    }
    out
}

/// Host reference LZW compressor: returns the emitted code stream.
///
/// Dictionary entries are (prefix code, byte) pairs; codes `0..alphabet`
/// are the single bytes, new entries are appended on each miss. Search is
/// linear, matching the simulated implementation.
pub fn lzw_compress(input: &[u8], alphabet: u16) -> Vec<i64> {
    let mut dict: Vec<(i64, u8)> = Vec::new();
    let mut out = Vec::new();
    if input.is_empty() {
        return out;
    }
    let mut cur: i64 = input[0] as i64;
    for &b in &input[1..] {
        // find (cur, b) in dict
        let found = dict.iter().position(|&(p, c)| p == cur && c == b);
        match found {
            Some(i) => cur = alphabet as i64 + i as i64,
            None => {
                out.push(cur);
                dict.push((cur, b));
                cur = b as i64;
            }
        }
    }
    out.push(cur);
    out
}

/// Host reference LZW decompressor (validates compressor round-trips).
pub fn lzw_decompress(codes: &[i64], alphabet: u16) -> Vec<u8> {
    fn expand(dict: &[(i64, u8)], alphabet: u16, code: i64, out: &mut Vec<u8>) {
        if code < alphabet as i64 {
            out.push(code as u8);
        } else {
            let (p, c) = dict[(code - alphabet as i64) as usize];
            expand(dict, alphabet, p, out);
            out.push(c);
        }
    }
    let mut dict: Vec<(i64, u8)> = Vec::new();
    let mut out = Vec::new();
    let mut prev: Option<i64> = None;
    for &code in codes {
        let mut cur = Vec::new();
        if code < alphabet as i64 + dict.len() as i64 {
            expand(&dict, alphabet, code, &mut cur);
        } else {
            // KwKwK case: code being defined right now.
            let p = prev.expect("first code cannot be novel");
            expand(&dict, alphabet, p, &mut cur);
            cur.push(cur[0]);
        }
        if let Some(p) = prev {
            dict.push((p, cur[0]));
        }
        out.extend_from_slice(&cur);
        prev = Some(code);
    }
    out
}

/// A random search tree for the mcf/crafty analogs: nodes have a cost and
/// children; laid out level by level.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Per-node edge cost from its parent (root cost is 0).
    pub cost: Vec<i64>,
    /// Children index lists.
    pub children: Vec<Vec<u32>>,
}

impl Tree {
    /// Random tree with `depth` levels and per-node fanout in
    /// `fanout_min..=fanout_max`, truncated at roughly `max_nodes`.
    pub fn random(
        seed: u64,
        depth: usize,
        fanout_min: usize,
        fanout_max: usize,
        max_nodes: usize,
        max_cost: i64,
    ) -> Tree {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut cost = vec![0i64];
        let mut children: Vec<Vec<u32>> = vec![Vec::new()];
        let mut frontier = vec![0usize];
        for _ in 1..depth {
            let mut next = Vec::new();
            for &u in &frontier {
                let fan = rng.usize_below(fanout_max - fanout_min + 1) + fanout_min;
                for _ in 0..fan {
                    if cost.len() >= max_nodes {
                        break;
                    }
                    let id = cost.len();
                    cost.push(rng.i64_range_incl(1, max_cost));
                    children.push(Vec::new());
                    children[u].push(id as u32);
                    next.push(id);
                }
            }
            frontier = next;
            if frontier.is_empty() || cost.len() >= max_nodes {
                break;
            }
        }
        Tree { cost, children }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// True for a single-node tree.
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Host reference: minimum root-to-leaf path cost (the mcf route
    /// planner's objective).
    pub fn min_leaf_cost(&self) -> i64 {
        fn go(t: &Tree, u: usize, acc: i64) -> i64 {
            if t.children[u].is_empty() {
                return acc;
            }
            t.children[u]
                .iter()
                .map(|&c| go(t, c as usize, acc + t.cost[c as usize]))
                .min()
                .expect("interior node has children")
        }
        go(self, 0, 0)
    }

    /// Host reference: negamax value with leaf score = accumulated cost
    /// (the crafty analog's objective — max at even depth, min at odd).
    pub fn minimax(&self) -> i64 {
        fn go(t: &Tree, u: usize, acc: i64, maximize: bool) -> i64 {
            if t.children[u].is_empty() {
                return acc;
            }
            let vals = t.children[u]
                .iter()
                .map(|&c| go(t, c as usize, acc + t.cost[c as usize], !maximize));
            if maximize {
                vals.max().expect("interior node has children")
            } else {
                vals.min().expect("interior node has children")
            }
        }
        go(self, 0, 0, true)
    }
}

/// A linearly separable training set for the Perceptron analog.
#[derive(Debug, Clone)]
pub struct PerceptronData {
    /// Sample feature vectors.
    pub samples: Vec<Vec<f64>>,
    /// ±1 labels.
    pub labels: Vec<f64>,
    /// Features per sample ("neurons" in the paper's 10000-neuron group).
    pub features: usize,
}

impl PerceptronData {
    /// Generates `samples` points of `features` dimensions labeled by a
    /// random ground-truth hyperplane (guaranteed separable).
    pub fn random(seed: u64, samples: usize, features: usize) -> PerceptronData {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let truth: Vec<f64> = (0..features).map(|_| rng.f64_range(-1.0, 1.0)).collect();
        let mut xs = Vec::with_capacity(samples);
        let mut ys = Vec::with_capacity(samples);
        for _ in 0..samples {
            let x: Vec<f64> = (0..features).map(|_| rng.f64_range(-1.0, 1.0)).collect();
            let dot: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            ys.push(if dot >= 0.0 { 1.0 } else { -1.0 });
            xs.push(x);
        }
        PerceptronData { samples: xs, labels: ys, features }
    }

    /// Host reference: trains `epochs` epochs of the perceptron rule from
    /// zero weights, returning the final weights.
    pub fn train_reference(&self, epochs: usize, lr: f64) -> Vec<f64> {
        let mut w = vec![0.0f64; self.features];
        for _ in 0..epochs {
            for (x, &y) in self.samples.iter().zip(&self.labels) {
                let dot: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                let pred = if dot >= 0.0 { 1.0 } else { -1.0 };
                if pred != y {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += lr * y * xi;
                    }
                }
            }
        }
        w
    }
}

/// Suffix-sort host reference for the bzip2 analog: indices of all
/// suffixes of `block`, sorted lexicographically.
pub fn suffix_sort_reference(block: &[u8]) -> Vec<i64> {
    let mut idx: Vec<i64> = (0..block.len() as i64).collect();
    idx.sort_by(|&a, &b| block[a as usize..].cmp(&block[b as usize..]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_reachable_and_deterministic() {
        let g1 = Graph::random(7, 100, 4, 50);
        let g2 = Graph::random(7, 100, 4, 50);
        assert_eq!(g1.adj, g2.adj);
        let dist = g1.shortest_distances(0);
        assert!(dist.iter().all(|&d| d < i64::MAX), "all nodes reachable from 0");
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn grid_graph_shape() {
        let g = Graph::grid(1, 5, 9);
        assert_eq!(g.len(), 25);
        // Corner has 2 neighbours, center has 4.
        assert_eq!(g.adj[0].len(), 2);
        assert_eq!(g.adj[12].len(), 4);
    }

    #[test]
    fn shortest_distances_match_bruteforce_on_tiny_graph() {
        let g = Graph { adj: vec![vec![(1, 5), (2, 1)], vec![], vec![(1, 2)]] };
        let d = g.shortest_distances(0);
        assert_eq!(d, vec![0, 3, 1]);
    }

    #[test]
    fn list_shapes() {
        let n = 200;
        for shape in ListShape::ALL {
            let v = random_list(3, n, shape);
            assert_eq!(v.len(), n);
        }
        let s = random_list(3, n, ListShape::Sorted);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = random_list(3, n, ListShape::Reversed);
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
        let f = random_list(3, n, ListShape::FewDistinct);
        assert!(f.iter().all(|&x| (0..8).contains(&x)));
    }

    /// Regenerating the Figure 3 graphs and Figure 5 lists from their
    /// fixed seeds must be byte-identical run to run — the bench
    /// harness relies on regeneration instead of storing datasets.
    #[test]
    fn fig3_fig5_datasets_regenerate_byte_identical() {
        for g in 0..5u64 {
            // Same seed/shape parameters as Dijkstra::figure3 in the
            // fig3 harness.
            let a = Graph::random(1000 + g, 250, 3, 64);
            let b = Graph::random(1000 + g, 250, 3, 64);
            assert_eq!(
                format!("{a:?}").into_bytes(),
                format!("{b:?}").into_bytes(),
                "fig3 graph seed {g}"
            );
        }
        for i in 0..10u64 {
            let shape = ListShape::ALL[i as usize % ListShape::ALL.len()];
            let a = random_list(2000 + i, 800, shape);
            let b = random_list(2000 + i, 800, shape);
            assert_eq!(
                format!("{a:?}").into_bytes(),
                format!("{b:?}").into_bytes(),
                "fig5 list seed {i}"
            );
        }
    }

    #[test]
    fn lzw_roundtrips() {
        for seed in 0..5 {
            let text = lzw_text(seed, 1000, 6);
            let codes = lzw_compress(&text, 256);
            let back = lzw_decompress(&codes, 256);
            assert_eq!(back, text, "seed {seed}");
            assert!(codes.len() < text.len(), "compression must shrink repetitive text");
        }
    }

    #[test]
    fn lzw_empty_input() {
        assert!(lzw_compress(&[], 256).is_empty());
    }

    #[test]
    fn tree_construction_and_min_path() {
        let t = Tree::random(5, 8, 2, 3, 2000, 10);
        assert!(t.len() > 50);
        let m = t.min_leaf_cost();
        assert!(m >= 0);
        // Exhaustive check on a small fixed tree.
        let t = Tree {
            cost: vec![0, 3, 1, 5, 2],
            children: vec![vec![1, 2], vec![3], vec![4], vec![], vec![]],
        };
        assert_eq!(t.min_leaf_cost(), 3); // 0 -> 2(1) -> 4(2)
        assert_eq!(t.minimax(), 8); // max(min{8}, min{3}) over the root's children
    }

    #[test]
    fn perceptron_reference_converges() {
        let d = PerceptronData::random(11, 60, 16);
        let w = d.train_reference(20, 0.1);
        let mut errors = 0;
        for (x, &y) in d.samples.iter().zip(&d.labels) {
            let dot: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            let pred = if dot >= 0.0 { 1.0 } else { -1.0 };
            if pred != y {
                errors += 1;
            }
        }
        assert!(errors <= 3, "perceptron failed to converge: {errors} errors");
    }

    #[test]
    fn suffix_sort_reference_is_sorted() {
        let block = b"banana_bandana";
        let idx = suffix_sort_reference(block);
        for w in idx.windows(2) {
            assert!(block[w[0] as usize..] <= block[w[1] as usize..]);
        }
        assert_eq!(idx.len(), block.len());
    }
}

impl Tree {
    /// Grafts `subtrees` under a fresh root: each entry is the edge cost
    /// to the subtree's root. Gives precise control over the root fanout
    /// (the crafty analog's task count).
    pub fn graft(subtrees: Vec<(i64, Tree)>) -> Tree {
        assert!(!subtrees.is_empty());
        let mut cost = vec![0i64];
        let mut children: Vec<Vec<u32>> = vec![Vec::new()];
        for (edge_cost, sub) in subtrees {
            let offset = cost.len() as u32;
            children[0].push(offset);
            for (i, (&c, kids)) in sub.cost.iter().zip(&sub.children).enumerate() {
                cost.push(if i == 0 { edge_cost } else { c });
                children.push(kids.iter().map(|&k| k + offset).collect());
            }
        }
        Tree { cost, children }
    }
}

#[cfg(test)]
mod graft_tests {
    use super::*;

    #[test]
    fn graft_preserves_subtree_structure() {
        let a = Tree::random(1, 4, 2, 2, 50, 10);
        let b = Tree::random(2, 4, 2, 2, 50, 10);
        let (amin, bmin) = (a.min_leaf_cost(), b.min_leaf_cost());
        let t = Tree::graft(vec![(5, a), (7, b)]);
        assert_eq!(t.children[0].len(), 2);
        assert_eq!(t.min_leaf_cost(), (5 + amin).min(7 + bmin));
    }

    #[test]
    fn graft_wide_root() {
        let subs: Vec<(i64, Tree)> =
            (0..24).map(|i| (i as i64 + 1, Tree::random(i, 3, 2, 2, 20, 5))).collect();
        let t = Tree::graft(subs);
        assert_eq!(t.children[0].len(), 24);
    }
}
