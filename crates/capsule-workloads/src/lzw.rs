//! LZW compression (the 164.gzip core algorithm; Figure 7's throttling
//! workload).
//!
//! The paper: *"The LZW component version recursively splits the initial
//! sequence of N = 4096 characters it must match into two sequences of
//! N/2 characters in order to parallelize the search"* — and because the
//! per-worker processing is tiny, LZW benefits from the death-rate
//! division throttle.
//!
//! Our component version parallelizes the dictionary search of each step:
//! the ancestor runs the classic LZW outer loop; for every input byte it
//! launches a divide-in-half component search over the current dictionary
//! (entries are `(prefix code, byte)` pairs, matching the host reference
//! in [`crate::datasets::lzw_compress`]). Workers are short-lived by
//! construction, which is precisely what makes the throttle matter.
//!
//! Output: the emitted code stream, checked verbatim against the host
//! compressor (and, transitively, against the host decompressor's
//! round-trip test).

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::lzw_compress;
use crate::rt::{
    emit_join_spin, emit_split_range_worker, emit_stack_alloc, emit_stack_free, init_runtime,
    Labels, T0, T1,
};
use crate::{expect_ints, Variant, Workload};

/// Dictionary ranges at or below this size are scanned by one worker.
pub const SEARCH_LEAF: i64 = 16;

const PENDING: Reg = Reg(13);
const POS: Reg = Reg(21); // outer-loop position (preserved by the splitter)
const CUR: Reg = Reg(22); // current code / search target prefix
const CH: Reg = Reg(23); // next byte / search target char
const R5: Reg = Reg(5);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);

/// The LZW workload over one input text.
#[derive(Debug, Clone)]
pub struct Lzw {
    input: Vec<u8>,
    /// Componentized-section mark id.
    pub section: u16,
}

impl Lzw {
    /// Builds the workload for `input`.
    pub fn new(input: Vec<u8>) -> Self {
        assert!(!input.is_empty(), "LZW input must be non-empty");
        Lzw { input, section: 1 }
    }

    /// The paper's Figure 7 configuration: N input characters from a
    /// small alphabet.
    pub fn figure7(seed: u64, n: usize) -> Self {
        Lzw::new(crate::datasets::lzw_text(seed, n, 8))
    }

    /// Host-reference code stream.
    pub fn expected_codes(&self) -> Vec<i64> {
        lzw_compress(&self.input, 256)
    }

    /// The input text.
    pub fn input(&self) -> &[u8] {
        &self.input
    }

    fn build(&self, allow_divide: bool) -> Program {
        let n = self.input.len();
        let mut d = DataBuilder::new();
        d.label("input");
        let input = d.raw(&self.input);
        d.align(8);
        d.label("dict_prefix");
        let dict_prefix = d.zeros(n * 8);
        d.label("dict_char");
        let dict_char = d.zeros(n * 8);
        let dict_len = d.word(0);
        let found = d.word(-1);
        let rt = init_runtime(&mut d, 1, 32, 2048);

        let mut a = Asm::new();
        let l = Labels::new("lzw");

        // ---- ancestor outer loop ----
        a.mark_start(self.section);
        a.li(R5, input as i64);
        a.ldb(CUR, 0, R5); // cur = input[0]
        a.li(POS, 1);
        emit_stack_alloc(&mut a, &rt, &l);
        a.bind("outer");
        a.li(R5, n as i64);
        a.bge(POS, R5, "emit_last");
        a.li(R5, input as i64);
        a.add(R5, R5, POS);
        a.ldb(CH, 0, R5);
        // found = -1; tokens = 1 (no other worker is alive here)
        a.li(R5, found as i64);
        a.li(R7, -1);
        a.st(R7, 0, R5);
        a.li(T0, rt.tokens as i64);
        a.li(T1, 1);
        a.st(T1, 0, T0);
        // component search over the dictionary [0, dict_len)
        a.li(R5, dict_len as i64);
        a.ld(Reg::A1, 0, R5);
        a.li(Reg::A0, 0);
        a.li(PENDING, 0);
        a.j("lz_work");
        a.bind("lz_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "lz_die");
        emit_join_spin(&mut a, &rt, &l);
        // consume the search result
        a.li(R5, found as i64);
        a.ld(R7, 0, R5);
        a.blt(R7, Reg::ZERO, "miss");
        a.addi(CUR, R7, 256);
        a.j("next");
        a.bind("miss");
        a.out(CUR);
        // append (cur, ch) to the dictionary
        a.li(R5, dict_len as i64);
        a.ld(R8, 0, R5);
        a.slli(R9, R8, 3);
        a.li(R10, dict_prefix as i64);
        a.add(R10, R10, R9);
        a.st(CUR, 0, R10);
        a.li(R10, dict_char as i64);
        a.add(R10, R10, R9);
        a.st(CH, 0, R10);
        a.addi(R8, R8, 1);
        a.st(R8, 0, R5);
        a.mv(CUR, CH);
        a.bind("next");
        a.addi(POS, POS, 1);
        a.j("outer");
        a.bind("emit_last");
        a.out(CUR);
        a.mark_end(self.section);
        a.halt();
        a.bind("lz_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();

        // ---- the component search body ----
        emit_split_range_worker(&mut a, "lz", &rt, SEARCH_LEAF, allow_divide, |a| {
            // scan dict[lo, hi) for (CUR, CH)
            a.mv(R7, Reg::A0);
            a.bind("leaf_loop");
            a.bge(R7, Reg::A1, "leaf_done");
            a.slli(R8, R7, 3);
            a.li(R9, dict_prefix as i64);
            a.add(R9, R9, R8);
            a.ld(R10, 0, R9);
            a.bne(R10, CUR, "leaf_next");
            a.li(R9, dict_char as i64);
            a.add(R9, R9, R8);
            a.ld(R10, 0, R9);
            a.bne(R10, CH, "leaf_next");
            // unique match: plain store is race-free
            a.li(R9, found as i64);
            a.st(R7, 0, R9);
            a.j("leaf_done");
            a.bind("leaf_next");
            a.addi(R7, R7, 1);
            a.j("leaf_loop");
            a.bind("leaf_done");
        });

        Program::new(a.assemble().expect("lzw assembles"), d.build(), 1 << 16)
            .with_thread(ThreadSpec::at(0))
    }
}

impl Workload for Lzw {
    fn name(&self) -> &'static str {
        "lzw"
    }

    fn supports(&self, variant: Variant) -> bool {
        !matches!(variant, Variant::Static(_))
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(false),
            Variant::Component => self.build(true),
            Variant::Static(_) => panic!("lzw has no static variant (see paper §4)"),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &self.expected_codes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::lzw_decompress;
    use capsule_core::config::{DivisionMode, MachineConfig};
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Lzw {
        Lzw::figure7(5, 300)
    }

    #[test]
    fn component_compresses_correctly_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(200_000_000).unwrap();
        w.check(&out.output).unwrap();
        // Round-trip sanity through the host decompressor.
        let codes: Vec<i64> = out.output.iter().filter_map(|v| v.as_int()).collect();
        assert_eq!(lzw_decompress(&codes, 256), w.input());
    }

    #[test]
    fn component_runs_on_somt() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(500_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert!(o.stats.divisions_requested > 0);
    }

    #[test]
    fn sequential_matches_on_superscalar() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(500_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_requested, 0);
    }

    #[test]
    fn throttle_reduces_deaths() {
        // Figure 7's mechanism: with throttling the machine denies
        // divisions while workers die quickly, so fewer (tiny) workers are
        // created than with the plain greedy policy.
        let w = Lzw::figure7(9, 500);
        let p = w.program(Variant::Component);
        let throttled =
            Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(1_000_000_000).unwrap();
        let mut greedy_cfg = MachineConfig::table1_somt();
        greedy_cfg.division_mode = DivisionMode::Greedy;
        let greedy = Machine::new(greedy_cfg, &p).unwrap().run(1_000_000_000).unwrap();
        w.check(&throttled.output).unwrap();
        w.check(&greedy.output).unwrap();
        assert!(
            throttled.stats.divisions_granted() < greedy.stats.divisions_granted(),
            "throttle should suppress some divisions: {} vs {}",
            throttled.stats.divisions_granted(),
            greedy.stats.divisions_granted()
        );
        assert!(throttled.stats.divisions_denied_throttled > 0);
    }
}
