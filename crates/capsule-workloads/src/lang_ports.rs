//! Workloads written in Capsule C — the paper's intended programming
//! model, end to end: source → toolchain → SOMT.
//!
//! These ports exist next to the hand-emitted CAP64 versions so the
//! toolchain can be validated against them (same results) and its
//! overhead quantified (the paper reports ~15 cycles of software overhead
//! per division for its pre-processor output; see
//! [`probe_overhead_program`] and the `toolchain_overhead` bench).

use capsule_isa::program::Program;
use capsule_lang::compile;

/// Component sum over `values`, in Capsule C. Output: one total.
pub fn sum_source(values: &[i64], leaf: usize) -> String {
    let n = values.len();
    let init: String =
        values.iter().enumerate().map(|(i, v)| format!("    arr[{i}] = {v};\n")).collect();
    format!(
        r"
global total;
global arr[{n}];

worker sum(lo, hi) {{
    while (hi - lo > {leaf}) {{
        let mid = lo + (hi - lo) / 2;
        coworker sum(mid, hi);
        hi = mid;
    }}
    let acc = 0;
    while (lo < hi) {{ acc = acc + arr[lo]; lo = lo + 1; }}
    lock (&total) {{ total = total + acc; }}
}}

worker main() {{
{init}
    coworker sum(0, {n});
    join;
    out(total);
}}
"
    )
}

/// Compiles the component sum.
///
/// # Panics
///
/// Panics if the generated source fails to compile (a bug in the
/// generator, not in user input).
pub fn sum_program(values: &[i64], leaf: usize) -> Program {
    compile(&sum_source(values, leaf)).expect("generated sum source compiles")
}

/// Component QuickSort in Capsule C over a global array; after the join
/// the ancestor emits `[sorted_flag, sum]` like the hand-written
/// [`crate::quicksort::QuickSort`] workload.
pub fn quicksort_source(values: &[i64], leaf: usize) -> String {
    let n = values.len();
    let init: String =
        values.iter().enumerate().map(|(i, v)| format!("    arr[{i}] = {v};\n")).collect();
    format!(
        r"
global arr[{n}];

worker qsort(lo, hi) {{
    while (hi - lo > {leaf}) {{
        // middle-element pivot to the end, then Lomuto partition
        let mid = (lo + hi) / 2;
        let tmp = arr[mid];
        arr[mid] = arr[hi - 1];
        arr[hi - 1] = tmp;
        let pivot = arr[hi - 1];
        let store = lo;
        let k = lo;
        while (k < hi - 1) {{
            if (arr[k] <= pivot) {{
                tmp = arr[k];
                arr[k] = arr[store];
                arr[store] = tmp;
                store = store + 1;
            }}
            k = k + 1;
        }}
        tmp = arr[store];
        arr[store] = arr[hi - 1];
        arr[hi - 1] = tmp;
        // offer the smaller half to the architecture, keep the larger
        if (store - lo < hi - store - 1) {{
            coworker qsort(lo, store);
            lo = store + 1;
        }} else {{
            coworker qsort(store + 1, hi);
            hi = store;
        }}
    }}
    // insertion sort of the leaf
    let i = lo + 1;
    while (i < hi) {{
        let x = arr[i];
        let j = i - 1;
        while (j >= lo && arr[j] > x) {{
            arr[j + 1] = arr[j];
            j = j - 1;
        }}
        arr[j + 1] = x;
        i = i + 1;
    }}
}}

worker main() {{
{init}
    coworker qsort(0, {n});
    join;
    let sorted = 1;
    let sum = arr[0];
    let i = 1;
    while (i < {n}) {{
        sum = sum + arr[i];
        if (arr[i - 1] > arr[i]) {{ sorted = 0; }}
        i = i + 1;
    }}
    out(sorted);
    out(sum);
}}
"
    )
}

/// Compiles the component QuickSort.
///
/// # Panics
///
/// Panics if the generated source fails to compile.
pub fn quicksort_program(values: &[i64], leaf: usize) -> Program {
    compile(&quicksort_source(values, leaf)).expect("generated quicksort source compiles")
}

/// A microbenchmark pair quantifying the toolchain's per-probe software
/// overhead (the paper: "the measured average programming overhead is 15
/// cycles per division"): the same loop of `n` worker invocations, once
/// through `coworker` (probe + token bookkeeping + call on denial) and
/// once as a plain call. Run both on the superscalar (every probe denied)
/// and divide the cycle difference by `n`.
pub fn probe_overhead_program(n: usize, coworker: bool) -> Program {
    let invoke = if coworker { "coworker nopwork(i);" } else { "nopwork(i);" };
    let src = format!(
        r"
global sink;
worker nopwork(v) {{ lock (&sink) {{ sink = sink + v; }} }}
worker main() {{
    let i = 0;
    while (i < {n}) {{
        {invoke}
        i = i + 1;
    }}
    join;
    out(sink);
}}
"
    );
    compile(&src).expect("overhead source compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;

    use crate::datasets::{random_list, ListShape};

    fn run(cfg: MachineConfig, p: &Program) -> capsule_sim::SimOutcome {
        Machine::new(cfg, p).expect("loads").run(50_000_000_000).expect("halts")
    }

    #[test]
    fn compiled_sum_matches_expected() {
        let values = random_list(5, 600, ListShape::Uniform);
        let expected: i64 = values.iter().sum();
        let p = sum_program(&values, 32);
        let o = run(MachineConfig::table1_somt(), &p);
        assert_eq!(o.ints(), vec![expected]);
        assert!(o.stats.divisions_granted() > 0);
    }

    #[test]
    fn compiled_quicksort_sorts_and_matches_hand_written() {
        let values = random_list(6, 500, ListShape::Uniform);
        let expected_sum: i64 = values.iter().sum();
        let p = quicksort_program(&values, 24);
        let o = run(MachineConfig::table1_somt(), &p);
        assert_eq!(o.ints(), vec![1, expected_sum], "compiled version must sort");

        // The hand-emitted workload answers the same on the same machine.
        let hand = crate::quicksort::QuickSort::new(values);
        let hp = crate::Workload::program(&hand, crate::Variant::Component);
        let ho = run(MachineConfig::table1_somt(), &hp);
        assert_eq!(o.ints(), ho.ints());
    }

    #[test]
    fn compiled_quicksort_handles_adversarial_shapes() {
        for shape in [ListShape::Sorted, ListShape::Reversed, ListShape::FewDistinct] {
            let values = random_list(7, 300, shape);
            let expected_sum: i64 = values.iter().sum();
            let p = quicksort_program(&values, 24);
            let o = run(MachineConfig::table1_somt(), &p);
            assert_eq!(o.ints(), vec![1, expected_sum], "{shape:?}");
        }
    }

    #[test]
    fn probe_overhead_is_bounded_on_denial() {
        // On the superscalar every coworker probe is denied: the extra
        // cost over a plain call is the token take/return plus the nthr —
        // the toolchain's software overhead per division attempt.
        let n = 400;
        let plain = run(MachineConfig::table1_superscalar(), &probe_overhead_program(n, false));
        let probed = run(MachineConfig::table1_superscalar(), &probe_overhead_program(n, true));
        assert_eq!(plain.ints(), probed.ints());
        let per_probe = (probed.cycles() as f64 - plain.cycles() as f64) / n as f64;
        assert!(
            per_probe < 60.0,
            "per-probe software overhead too high: {per_probe:.1} cycles (paper: ~15)"
        );
        assert!(per_probe > 0.0, "probing cannot be free: {per_probe:.1}");
    }
}
