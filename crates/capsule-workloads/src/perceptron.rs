//! Perceptron training (the 179.art core algorithm; Figure 7's second
//! throttling workload).
//!
//! The paper: *"The Perceptron component version constantly attempts to
//! split its initial group of 10000 neurons into two child components
//! with half the number of neurons"* — per-step work is small, so the
//! death-rate throttle is what keeps division profitable.
//!
//! The ancestor runs the training loop (epochs × samples); the dot
//! product and the weight update of each step are divide-in-half
//! component phases over the feature ("neuron") range. The dot product
//! merges worker partial sums into a lock-protected global accumulator —
//! the paper's "progressively combining local results from co-workers
//! rather than updating a central variable".
//!
//! Output: the number of misclassified training samples under the final
//! weights. Parallel FP reduction order differs between runs, so the
//! check is a convergence bound rather than bit-exactness (documented in
//! DESIGN.md).

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::{FReg, Reg};

use crate::datasets::PerceptronData;
use crate::rt::{
    emit_barrier_wait, emit_join_spin, emit_split_range_worker, emit_stack_alloc, emit_stack_free,
    init_barrier, init_runtime, Labels, T0, T1,
};
use crate::{ints, Variant, Workload};

/// Neuron ranges at or below this size are processed by one worker.
pub const NEURON_LEAF: i64 = 64;

const PENDING: Reg = Reg(13);
const EPOCH: Reg = Reg(21);
const SAMPLE: Reg = Reg(22);
const SBASE: Reg = Reg(23); // current sample's feature base address
const R5: Reg = Reg(5);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);

const F_SUM: FReg = FReg(1);
const F_A: FReg = FReg(2);
const F_B: FReg = FReg(3);
const F_Y: FReg = FReg(4);
const F_PRED: FReg = FReg(5);
const F_ZERO: FReg = FReg(6);
const F_LRY: FReg = FReg(10); // lr * y, staged for the update phase

/// The Perceptron workload.
#[derive(Debug, Clone)]
pub struct Perceptron {
    data: PerceptronData,
    epochs: usize,
    lr: f64,
    leaf: i64,
    /// Componentized-section mark id.
    pub section: u16,
}

impl Perceptron {
    /// Builds the workload.
    pub fn new(data: PerceptronData, epochs: usize, lr: f64) -> Self {
        Perceptron { data, epochs, lr, leaf: NEURON_LEAF, section: 1 }
    }

    /// Overrides the leaf size (smaller leaves mean smaller, shorter-lived
    /// workers — the regime where Figure 7's throttle matters most).
    pub fn with_leaf(mut self, leaf: i64) -> Self {
        assert!(leaf >= 1);
        self.leaf = leaf;
        self
    }

    /// A Figure 7-style configuration: one neuron group of `features`
    /// neurons (the paper uses 10000).
    pub fn figure7(seed: u64, samples: usize, features: usize, epochs: usize) -> Self {
        Perceptron::new(PerceptronData::random(seed, samples, features), epochs, 0.1)
    }

    /// Host-reference error count after training (same rule, sequential
    /// summation order).
    pub fn reference_errors(&self) -> usize {
        let w = self.data.train_reference(self.epochs, self.lr);
        self.data
            .samples
            .iter()
            .zip(&self.data.labels)
            .filter(|(x, &y)| {
                let dot: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                let pred = if dot >= 0.0 { 1.0 } else { -1.0 };
                pred != y
            })
            .count()
    }

    /// Loose acceptance bound for the simulated error count.
    pub fn error_bound(&self) -> i64 {
        (self.reference_errors() as i64 + self.data.samples.len() as i64 / 10).max(2)
    }

    fn build(&self, allow_divide: bool) -> Program {
        let f = self.data.features;
        let m = self.data.samples.len();
        let mut d = DataBuilder::new();
        d.label("weights");
        let weights = d.zeros(f * 8);
        let flat: Vec<f64> = self.data.samples.iter().flatten().copied().collect();
        d.label("samples");
        let samples = d.f64s(&flat);
        d.label("labels");
        let labels = d.f64s(&self.data.labels);
        let dot_cell = d.word(0);
        let rt = init_runtime(&mut d, 1, 32, 2048);

        let mut a = Asm::new();
        let l = Labels::new("pc");

        a.mark_start(self.section);
        emit_stack_alloc(&mut a, &rt, &l);
        a.fli(F_ZERO, 0.0);
        a.li(EPOCH, 0);
        a.bind("epoch_loop");
        a.li(R5, self.epochs as i64);
        a.bge(EPOCH, R5, "evaluate");
        a.li(SAMPLE, 0);
        a.bind("sample_loop");
        a.li(R5, m as i64);
        a.bge(SAMPLE, R5, "sample_done");
        // SBASE = samples + SAMPLE * f * 8
        a.li(R5, (f * 8) as i64);
        a.mul(SBASE, SAMPLE, R5);
        a.li(R5, samples as i64);
        a.add(SBASE, SBASE, R5);
        // dot = 0.0; tokens = 1
        a.li(R5, dot_cell as i64);
        a.st(Reg::ZERO, 0, R5);
        a.li(T0, rt.tokens as i64);
        a.li(T1, 1);
        a.st(T1, 0, T0);
        // --- component dot product over [0, f) ---
        a.li(Reg::A0, 0);
        a.li(Reg::A1, f as i64);
        a.li(PENDING, 0);
        a.j("pd_work");
        a.bind("pd_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "pd_die");
        emit_join_spin(&mut a, &rt, &l);
        // pred = sign(dot); y = labels[SAMPLE]
        a.li(R5, dot_cell as i64);
        a.fld(F_SUM, 0, R5);
        a.slli(R5, SAMPLE, 3);
        a.li(R7, labels as i64);
        a.add(R5, R5, R7);
        a.fld(F_Y, 0, R5);
        a.fli(F_PRED, 1.0);
        a.fcmp(capsule_isa::instr::FCmpOp::Lt, R7, F_SUM, F_ZERO);
        a.beq(R7, Reg::ZERO, "have_pred");
        a.fli(F_PRED, -1.0);
        a.bind("have_pred");
        a.fcmp(capsule_isa::instr::FCmpOp::Eq, R7, F_PRED, F_Y);
        a.bne(R7, Reg::ZERO, "next_sample"); // correct: no update
                                             // stage lr*y and run the component weight update
        a.fli(F_A, self.lr);
        a.fmul(F_LRY, F_A, F_Y);
        a.li(T0, rt.tokens as i64);
        a.li(T1, 1);
        a.st(T1, 0, T0);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, f as i64);
        a.li(PENDING, 0);
        a.j("pu_work");
        a.bind("pu_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "pu_die");
        emit_join_spin(&mut a, &rt, &l);
        a.bind("next_sample");
        a.addi(SAMPLE, SAMPLE, 1);
        a.j("sample_loop");
        a.bind("sample_done");
        a.addi(EPOCH, EPOCH, 1);
        a.j("epoch_loop");
        // --- final evaluation (sequential, by the ancestor) ---
        a.bind("evaluate");
        a.mark_end(self.section);
        a.li(EPOCH, 0); // errors
        a.li(SAMPLE, 0);
        a.bind("ev_loop");
        a.li(R5, m as i64);
        a.bge(SAMPLE, R5, "ev_done");
        a.li(R5, (f * 8) as i64);
        a.mul(SBASE, SAMPLE, R5);
        a.li(R5, samples as i64);
        a.add(SBASE, SBASE, R5);
        a.fli(F_SUM, 0.0);
        a.li(R7, 0);
        a.bind("ev_dot");
        a.li(R5, f as i64);
        a.bge(R7, R5, "ev_pred");
        a.slli(R8, R7, 3);
        a.li(R9, weights as i64);
        a.add(R9, R9, R8);
        a.fld(F_A, 0, R9);
        a.add(R9, SBASE, R8);
        a.fld(F_B, 0, R9);
        a.fmul(F_A, F_A, F_B);
        a.fadd(F_SUM, F_SUM, F_A);
        a.addi(R7, R7, 1);
        a.j("ev_dot");
        a.bind("ev_pred");
        a.slli(R5, SAMPLE, 3);
        a.li(R7, labels as i64);
        a.add(R5, R5, R7);
        a.fld(F_Y, 0, R5);
        a.fli(F_PRED, 1.0);
        a.fcmp(capsule_isa::instr::FCmpOp::Lt, R7, F_SUM, F_ZERO);
        a.beq(R7, Reg::ZERO, "ev_have");
        a.fli(F_PRED, -1.0);
        a.bind("ev_have");
        a.fcmp(capsule_isa::instr::FCmpOp::Eq, R7, F_PRED, F_Y);
        a.bne(R7, Reg::ZERO, "ev_next");
        a.addi(EPOCH, EPOCH, 1);
        a.bind("ev_next");
        a.addi(SAMPLE, SAMPLE, 1);
        a.j("ev_loop");
        a.bind("ev_done");
        a.out(EPOCH);
        a.halt();
        a.bind("pd_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        a.bind("pu_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();

        // --- dot-product worker ---
        emit_split_range_worker(&mut a, "pd", &rt, self.leaf, allow_divide, |a| {
            a.fli(F_SUM, 0.0);
            a.mv(R7, Reg::A0);
            a.bind("pdl_loop");
            a.bge(R7, Reg::A1, "pdl_done");
            a.slli(R8, R7, 3);
            a.li(R9, weights as i64);
            a.add(R9, R9, R8);
            a.fld(F_A, 0, R9);
            a.add(R9, SBASE, R8);
            a.fld(F_B, 0, R9);
            a.fmul(F_A, F_A, F_B);
            a.fadd(F_SUM, F_SUM, F_A);
            a.addi(R7, R7, 1);
            a.j("pdl_loop");
            a.bind("pdl_done");
            // merge under the dot-cell lock
            a.li(R9, dot_cell as i64);
            a.mlock(R9);
            a.fld(F_A, 0, R9);
            a.fadd(F_A, F_A, F_SUM);
            a.fst(F_A, 0, R9);
            a.munlock(R9);
        });

        // --- weight-update worker (disjoint ranges: no lock needed) ---
        emit_split_range_worker(&mut a, "pu", &rt, self.leaf, allow_divide, |a| {
            a.mv(R7, Reg::A0);
            a.bind("pul_loop");
            a.bge(R7, Reg::A1, "pul_done");
            a.slli(R8, R7, 3);
            a.add(R9, SBASE, R8);
            a.fld(F_A, 0, R9);
            a.fmul(F_A, F_A, F_LRY);
            a.li(R9, weights as i64);
            a.add(R9, R9, R8);
            a.fld(F_B, 0, R9);
            a.fadd(F_B, F_B, F_A);
            a.fst(F_B, 0, R9);
            a.addi(R7, R7, 1);
            a.j("pul_loop");
            a.bind("pul_done");
        });

        Program::new(a.assemble().expect("perceptron assembles"), d.build(), 1 << 16)
            .with_thread(ThreadSpec::at(0))
    }

    /// Statically parallelized variant (the paper's §4 method applied to
    /// Perceptron): `k` loader threads each own a fixed `features/k`
    /// slice; dot products and updates proceed in barrier-separated
    /// phases (the phase barrier of `rtlib`).
    fn build_static(&self, k: usize) -> Program {
        let f = self.data.features;
        assert!(k >= 1 && f.is_multiple_of(k), "features must divide over threads");
        let fk = (f / k) as i64;
        let m = self.data.samples.len();
        let mut d = DataBuilder::new();
        d.label("weights");
        let weights = d.zeros(f * 8);
        let flat: Vec<f64> = self.data.samples.iter().flatten().copied().collect();
        d.label("samples");
        let samples = d.f64s(&flat);
        d.label("labels");
        let labels = d.f64s(&self.data.labels);
        let dot_cell = d.word(0);
        let upd_flag = d.word(0); // holds lr*y when an update is due, else 0.0
        let bar = init_barrier(&mut d, k);

        let my = Reg(20);
        let (lo, hi) = (Reg(18), Reg(19));
        let mut a = Asm::new();
        let l = Labels::new("ps");

        // slice bounds: [my*fk, my*fk + fk)
        a.li(R5, fk);
        a.mul(lo, my, R5);
        a.addi(hi, lo, 0);
        a.addi(hi, hi, fk);
        a.fli(F_ZERO, 0.0);
        a.li(EPOCH, 0);
        a.bind("epoch_loop");
        a.li(R5, self.epochs as i64);
        a.bge(EPOCH, R5, "after_train");
        a.li(SAMPLE, 0);
        a.bind("sample_loop");
        a.li(R5, m as i64);
        a.bge(SAMPLE, R5, "sample_done");
        a.li(R5, (f * 8) as i64);
        a.mul(SBASE, SAMPLE, R5);
        a.li(R5, samples as i64);
        a.add(SBASE, SBASE, R5);
        // phase A: thread 0 clears the accumulator and the update flag
        emit_barrier_wait(&mut a, &bar, &l);
        a.bne(my, Reg::ZERO, "cleared");
        a.li(R5, dot_cell as i64);
        a.st(Reg::ZERO, 0, R5);
        a.li(R5, upd_flag as i64);
        a.st(Reg::ZERO, 0, R5);
        a.bind("cleared");
        emit_barrier_wait(&mut a, &bar, &l);
        // phase B: partial dot over [lo, hi), merged under the cell lock
        a.fli(F_SUM, 0.0);
        a.mv(R7, lo);
        a.bind("dot_loop");
        a.bge(R7, hi, "dot_done");
        a.slli(R8, R7, 3);
        a.li(R9, weights as i64);
        a.add(R9, R9, R8);
        a.fld(F_A, 0, R9);
        a.add(R9, SBASE, R8);
        a.fld(F_B, 0, R9);
        a.fmul(F_A, F_A, F_B);
        a.fadd(F_SUM, F_SUM, F_A);
        a.addi(R7, R7, 1);
        a.j("dot_loop");
        a.bind("dot_done");
        a.li(R9, dot_cell as i64);
        a.mlock(R9);
        a.fld(F_A, 0, R9);
        a.fadd(F_A, F_A, F_SUM);
        a.fst(F_A, 0, R9);
        a.munlock(R9);
        emit_barrier_wait(&mut a, &bar, &l);
        // phase C: thread 0 decides whether to update
        a.bne(my, Reg::ZERO, "decided");
        a.li(R5, dot_cell as i64);
        a.fld(F_SUM, 0, R5);
        a.slli(R5, SAMPLE, 3);
        a.li(R7, labels as i64);
        a.add(R5, R5, R7);
        a.fld(F_Y, 0, R5);
        a.fli(F_PRED, 1.0);
        a.fcmp(capsule_isa::instr::FCmpOp::Lt, R7, F_SUM, F_ZERO);
        a.beq(R7, Reg::ZERO, "have_pred_s");
        a.fli(F_PRED, -1.0);
        a.bind("have_pred_s");
        a.fcmp(capsule_isa::instr::FCmpOp::Eq, R7, F_PRED, F_Y);
        a.bne(R7, Reg::ZERO, "decided");
        a.fli(F_A, self.lr);
        a.fmul(F_A, F_A, F_Y);
        a.li(R5, upd_flag as i64);
        a.fst(F_A, 0, R5);
        a.bind("decided");
        emit_barrier_wait(&mut a, &bar, &l);
        // phase D: everyone updates its own slice when flagged
        a.li(R5, upd_flag as i64);
        a.fld(F_LRY, 0, R5);
        a.fcmp(capsule_isa::instr::FCmpOp::Eq, R7, F_LRY, F_ZERO);
        a.bne(R7, Reg::ZERO, "no_update");
        a.mv(R7, lo);
        a.bind("upd_loop");
        a.bge(R7, hi, "no_update");
        a.slli(R8, R7, 3);
        a.add(R9, SBASE, R8);
        a.fld(F_A, 0, R9);
        a.fmul(F_A, F_A, F_LRY);
        a.li(R9, weights as i64);
        a.add(R9, R9, R8);
        a.fld(F_B, 0, R9);
        a.fadd(F_B, F_B, F_A);
        a.fst(F_B, 0, R9);
        a.addi(R7, R7, 1);
        a.j("upd_loop");
        a.bind("no_update");
        emit_barrier_wait(&mut a, &bar, &l);
        a.addi(SAMPLE, SAMPLE, 1);
        a.j("sample_loop");
        a.bind("sample_done");
        a.addi(EPOCH, EPOCH, 1);
        a.j("epoch_loop");
        // training done: workers die, thread 0 evaluates sequentially
        a.bind("after_train");
        a.bne(my, Reg::ZERO, "park");
        a.li(EPOCH, 0); // errors
        a.li(SAMPLE, 0);
        a.bind("ev_loop");
        a.li(R5, m as i64);
        a.bge(SAMPLE, R5, "ev_done");
        a.li(R5, (f * 8) as i64);
        a.mul(SBASE, SAMPLE, R5);
        a.li(R5, samples as i64);
        a.add(SBASE, SBASE, R5);
        a.fli(F_SUM, 0.0);
        a.li(R7, 0);
        a.bind("ev_dot");
        a.li(R5, f as i64);
        a.bge(R7, R5, "ev_pred");
        a.slli(R8, R7, 3);
        a.li(R9, weights as i64);
        a.add(R9, R9, R8);
        a.fld(F_A, 0, R9);
        a.add(R9, SBASE, R8);
        a.fld(F_B, 0, R9);
        a.fmul(F_A, F_A, F_B);
        a.fadd(F_SUM, F_SUM, F_A);
        a.addi(R7, R7, 1);
        a.j("ev_dot");
        a.bind("ev_pred");
        a.slli(R5, SAMPLE, 3);
        a.li(R7, labels as i64);
        a.add(R5, R5, R7);
        a.fld(F_Y, 0, R5);
        a.fli(F_PRED, 1.0);
        a.fcmp(capsule_isa::instr::FCmpOp::Lt, R7, F_SUM, F_ZERO);
        a.beq(R7, Reg::ZERO, "ev_have");
        a.fli(F_PRED, -1.0);
        a.bind("ev_have");
        a.fcmp(capsule_isa::instr::FCmpOp::Eq, R7, F_PRED, F_Y);
        a.bne(R7, Reg::ZERO, "ev_next");
        a.addi(EPOCH, EPOCH, 1);
        a.bind("ev_next");
        a.addi(SAMPLE, SAMPLE, 1);
        a.j("ev_loop");
        a.bind("ev_done");
        a.out(EPOCH);
        a.halt();
        a.bind("park");
        a.kthr();

        let mut p =
            Program::new(a.assemble().expect("perceptron static assembles"), d.build(), 1 << 16);
        for t in 0..k {
            p.threads.push(ThreadSpec::at(0).with_reg(my, t as i64));
        }
        p
    }
}

impl Workload for Perceptron {
    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn supports(&self, variant: Variant) -> bool {
        if let Variant::Static(k) = variant {
            return k >= 1 && self.data.features.is_multiple_of(k);
        }
        true
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(false),
            Variant::Component => self.build(true),
            Variant::Static(k) => self.build_static(k),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        let got = ints(output);
        if got.len() != 1 {
            return Err(format!("expected one error count, got {got:?}"));
        }
        let bound = self.error_bound();
        if got[0] <= bound {
            Ok(())
        } else {
            Err(format!("perceptron failed to converge: {} errors (bound {bound})", got[0]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::{DivisionMode, MachineConfig};
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Perceptron {
        Perceptron::figure7(3, 16, 128, 6)
    }

    #[test]
    fn component_converges_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(500_000_000).unwrap();
        w.check(&out.output).unwrap();
    }

    #[test]
    fn component_converges_on_somt() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(1_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert!(o.stats.divisions_granted() > 0);
    }

    #[test]
    fn sequential_converges_and_never_divides() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(2_000_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_requested, 0);
    }

    #[test]
    fn throttle_engages_on_tiny_workers() {
        let w = Perceptron::figure7(4, 12, 512, 4).with_leaf(8);
        let p = w.program(Variant::Component);
        let throttled =
            Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(2_000_000_000).unwrap();
        let mut greedy = MachineConfig::table1_somt();
        greedy.division_mode = DivisionMode::Greedy;
        let unthrottled = Machine::new(greedy, &p).unwrap().run(2_000_000_000).unwrap();
        w.check(&throttled.output).unwrap();
        w.check(&unthrottled.output).unwrap();
        assert!(throttled.stats.divisions_denied_throttled > 0);
    }
}

#[cfg(test)]
mod static_tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;

    #[test]
    fn static_variant_converges_on_smt() {
        let w = Perceptron::figure7(3, 16, 128, 6);
        assert!(w.supports(Variant::Static(8)));
        let p = w.program(Variant::Static(8));
        assert_eq!(p.threads.len(), 8);
        let o = Machine::new(MachineConfig::table1_smt(), &p).unwrap().run(5_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_requested, 0, "static version never probes");
        assert!(o.stats.lock_acquires > 0, "barriers and dot merges take locks");
    }

    #[test]
    fn static_requires_divisible_features() {
        let w = Perceptron::figure7(3, 8, 100, 2);
        assert!(!w.supports(Variant::Static(8))); // 100 % 8 != 0
        assert!(w.supports(Variant::Static(4)));
    }
}
