//! The paper's benchmark suite, rebuilt for CAP64.
//!
//! Four core algorithms — [`dijkstra`], [`quicksort`], [`lzw`],
//! [`perceptron`] — and four SPEC CINT2000 analogs ([`spec`]: mcf, vpr,
//! bzip2, crafty), each available in up to three variants:
//!
//! - [`Variant::Sequential`] — the imperative baseline run on the
//!   superscalar machine;
//! - [`Variant::Static`] — a statically parallelized version using loader
//!   threads on a standard SMT (fixed 8-way data decomposition, the
//!   paper's profile-derived static parallelization);
//! - [`Variant::Component`] — the CAPSULE component version that probes
//!   and conditionally divides via `nthr`.
//!
//! Every workload ships a host-side reference ([`datasets`]) and a
//! [`Workload::check`] that validates simulator output against it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod dijkstra;
pub mod lang_ports;
pub mod lzw;
pub mod perceptron;
pub mod quicksort;
pub mod rt;
pub mod spec;

use capsule_core::OutValue;
use capsule_isa::program::Program;

/// Which implementation of a workload to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Imperative sequential baseline.
    Sequential,
    /// Statically parallelized with this many loader threads.
    Static(usize),
    /// CAPSULE component version (conditional division).
    Component,
}

/// A benchmark that can build programs and validate their output.
pub trait Workload {
    /// Short name used in reports ("dijkstra", "mcf", ...).
    fn name(&self) -> &'static str;

    /// Whether the variant is available (crafty, for example, has no
    /// plain sequential rewrite in the paper either).
    fn supports(&self, variant: Variant) -> bool;

    /// Builds the program for a variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant is unsupported; call [`Workload::supports`]
    /// first.
    fn program(&self, variant: Variant) -> Program;

    /// Validates a run's output channel against the host reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    fn check(&self, output: &[OutValue]) -> Result<(), String>;
}

/// Convenience: extract the integer outputs.
pub fn ints(output: &[OutValue]) -> Vec<i64> {
    output.iter().filter_map(OutValue::as_int).collect()
}

/// Convenience: compare integer outputs against expectation.
pub fn expect_ints(output: &[OutValue], expected: &[i64]) -> Result<(), String> {
    let got = ints(output);
    if got == expected {
        Ok(())
    } else {
        Err(format!(
            "output mismatch: expected {} values {:?}…, got {} values {:?}…",
            expected.len(),
            &expected[..expected.len().min(8)],
            got.len(),
            &got[..got.len().min(8)],
        ))
    }
}
