//! QuickSort (Figures 5 and 6 of the paper).
//!
//! The component worker partitions its range, then *probes* the
//! architecture: a granted `nthr` hands the right half to a freshly
//! divided worker; a denied probe defers the right half to the worker's
//! private pooled stack. Pivot quality decides how irregular the division
//! tree is — exactly the effect Figure 6 visualizes.
//!
//! - **Sequential**: the same algorithm with the probe compiled out
//!   (explicit-stack quicksort).
//! - **Static**: thread 0 first partitions the array into `k` ranges
//!   (repeatedly splitting the largest), then `k` loader threads each
//!   sort one range — a fixed decomposition whose balance depends on the
//!   pivots, reproducing the static version's variance in Figure 5.
//!
//! After the join, the ancestor scans the array and emits
//! `[sorted_flag, sum]`.

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::rt::{
    emit_join_spin, emit_locked_add, emit_stack_alloc, emit_stack_free, init_runtime, Labels,
    Runtime,
};
use crate::{expect_ints, Variant, Workload};

/// Ranges at or below this length are insertion-sorted.
pub const LEAF: i64 = 24;

const LO: Reg = Reg::A0;
const HI: Reg = Reg::A1;
const CV: Reg = Reg::A2; // staged child lo
const CP: Reg = Reg::A3; // staged child hi
const PENDING: Reg = Reg(13);
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);
const R12: Reg = Reg(12);
// Subroutine interface registers.
const SLO: Reg = Reg(14);
const SHI: Reg = Reg(15);
const SOUT: Reg = Reg(16);
const R17: Reg = Reg(17);

/// Addresses of the array image.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLayout {
    /// Element 0 address.
    pub base: u64,
    /// Element count.
    pub n: usize,
}

/// Lays out the value array under the symbol `arr`.
pub fn layout_array(d: &mut DataBuilder, values: &[i64]) -> ArrayLayout {
    d.label("arr");
    let base = d.words(values);
    ArrayLayout { base, n: values.len() }
}

/// How array elements are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Elements are signed 64-bit values.
    Value,
    /// Elements are suffix indices into a byte block; ordering is the
    /// lexicographic order of the suffixes (the bzip2 analog's
    /// block-sorting comparator).
    Suffix {
        /// Block base address.
        block: u64,
        /// Block length in bytes.
        len: usize,
    },
}

/// Emits `flag = (key(x) <= key(y))` into `flag` (1 or 0).
/// Clobbers `R17`, `Reg(18)`, `Reg(19)`, `Reg(20)` in suffix mode.
fn emit_cmp_le(a: &mut Asm, kk: KeyKind, l: &Labels, x: Reg, y: Reg, flag: Reg) {
    match kk {
        KeyKind::Value => {
            // flag = !(y < x)
            a.slt(flag, y, x);
            a.xori(flag, flag, 1);
        }
        KeyKind::Suffix { block, len } => {
            let (pi, pj, bi, bj) = (R17, Reg(18), Reg(19), Reg(20));
            let done = l.fresh("cmp_done");
            let loop_ = l.fresh("cmp_loop");
            let le = l.fresh("cmp_le");
            let gt = l.fresh("cmp_gt");
            a.mv(pi, x);
            a.mv(pj, y);
            a.bind(&loop_);
            a.li(flag, len as i64);
            a.bge(pi, flag, &le); // suffix x exhausted: x <= y
            a.bge(pj, flag, &gt); // suffix y exhausted: x > y
            a.li(flag, block as i64);
            a.add(bi, flag, pi);
            a.ldb(bi, 0, bi);
            a.add(bj, flag, pj);
            a.ldb(bj, 0, bj);
            a.blt(bi, bj, &le);
            a.blt(bj, bi, &gt);
            a.addi(pi, pi, 1);
            a.addi(pj, pj, 1);
            a.j(&loop_);
            a.bind(&le);
            a.li(flag, 1);
            a.j(&done);
            a.bind(&gt);
            a.li(flag, 0);
            a.bind(&done);
        }
    }
}

/// Emits `qs_partition`: Lomuto partition of `[SLO, SHI)` with the last
/// element as pivot; returns the pivot's final index in `SOUT`.
/// Clobbers `R5`–`R10` (and `R17`–`Reg(20)` in suffix mode).
/// Call with `call("qs_partition")`.
pub(crate) fn emit_partition(a: &mut Asm, arr: &ArrayLayout, kk: KeyKind, l: &Labels) {
    a.bind("qs_partition");
    // middle-element pivot: swap arr[(lo+hi)/2] to arr[hi-1] so sorted and
    // reversed inputs do not degenerate
    a.add(R5, SLO, SHI);
    a.srai(R5, R5, 1);
    a.slli(R5, R5, 3);
    a.li(R6, arr.base as i64);
    a.add(R5, R5, R6); // &arr[mid]
    a.addi(R7, SHI, -1);
    a.slli(R7, R7, 3);
    a.add(R7, R7, R6); // &arr[hi-1]
    a.ld(R8, 0, R5);
    a.ld(R9, 0, R7);
    a.st(R9, 0, R5);
    a.st(R8, 0, R7);
    // r5 = &arr[hi-1]; r6 = pivot value
    a.addi(R5, SHI, -1);
    a.slli(R5, R5, 3);
    a.li(R6, arr.base as i64);
    a.add(R5, R5, R6);
    a.ld(R6, 0, R5); // pivot
    a.mv(SOUT, SLO); // store index i
    a.mv(R7, SLO); // scan index k
    a.bind("qsp_loop");
    a.addi(R8, SHI, -1);
    a.bge(R7, R8, "qsp_done");
    // r8 = arr[k]
    a.slli(R8, R7, 3);
    a.li(R9, arr.base as i64);
    a.add(R8, R8, R9);
    a.ld(R9, 0, R8);
    // skip unless key(arr[k]) <= key(pivot)
    emit_cmp_le(a, kk, l, R9, R6, R12);
    a.beq(R12, Reg::ZERO, "qsp_next");
    // swap arr[i], arr[k]
    a.slli(R10, SOUT, 3);
    a.li(R12, arr.base as i64);
    a.add(R10, R10, R12);
    a.ld(R12, 0, R10);
    a.st(R9, 0, R10);
    a.st(R12, 0, R8);
    a.addi(SOUT, SOUT, 1);
    a.bind("qsp_next");
    a.addi(R7, R7, 1);
    a.j("qsp_loop");
    a.bind("qsp_done");
    // swap arr[i], arr[hi-1] (pivot into place)
    a.slli(R10, SOUT, 3);
    a.li(R12, arr.base as i64);
    a.add(R10, R10, R12);
    a.ld(R9, 0, R10);
    a.ld(R12, 0, R5);
    a.st(R12, 0, R10);
    a.st(R9, 0, R5);
    a.ret();
}

/// Emits `qs_insertion`: insertion sort of `[SLO, SHI)`.
/// Clobbers `R5`–`R10`, `R12`, `R17` (and `Reg(18)`–`Reg(20)` in suffix
/// mode).
pub(crate) fn emit_insertion(a: &mut Asm, arr: &ArrayLayout, kk: KeyKind, l: &Labels) {
    a.bind("qs_insertion");
    a.addi(R5, SLO, 1); // i
    a.bind("qsi_outer");
    a.bge(R5, SHI, "qsi_done");
    // x = arr[i]
    a.slli(R6, R5, 3);
    a.li(R7, arr.base as i64);
    a.add(R6, R6, R7);
    a.ld(R8, 0, R6); // x
    a.addi(R9, R5, -1); // j
    a.bind("qsi_inner");
    a.blt(R9, SLO, "qsi_place");
    a.slli(R10, R9, 3);
    a.li(R7, arr.base as i64);
    a.add(R10, R10, R7);
    a.ld(R6, 0, R10); // arr[j]
                      // place once key(arr[j]) <= key(x)
    emit_cmp_le(a, kk, l, R6, R8, R12);
    a.bne(R12, Reg::ZERO, "qsi_place");
    a.st(R6, 8, R10); // arr[j+1] = arr[j]
    a.addi(R9, R9, -1);
    a.j("qsi_inner");
    a.bind("qsi_place");
    // arr[j+1] = x
    a.addi(R10, R9, 1);
    a.slli(R10, R10, 3);
    a.li(R7, arr.base as i64);
    a.add(R10, R10, R7);
    a.st(R8, 0, R10);
    a.addi(R5, R5, 1);
    a.j("qsi_outer");
    a.bind("qsi_done");
    a.ret();
}

/// Emits the sort body. Enter at `{p}_sort` with `LO`/`HI`; exits to
/// `{p}_finish` (bound by the caller). `allow_divide` compiles the probe
/// in or out.
pub fn emit_sort_body(a: &mut Asm, p: &str, arr: &ArrayLayout, rt: &Runtime, allow_divide: bool) {
    let _ = arr; // geometry is baked into the partition/insertion bodies
    a.bind(format!("{p}_sort"));
    a.sub(R5, HI, LO);
    a.li(R6, LEAF);
    a.bge(R6, R5, &format!("{p}_leaf"));
    // partition
    a.mv(SLO, LO);
    a.mv(SHI, HI);
    a.call("qs_partition");
    // stage the SMALLER half for the child / pending stack (bounds the
    // pending depth at log2 n even on degenerate pivots); continue with
    // the larger half
    a.sub(R5, SOUT, LO); // left size
    a.sub(R6, HI, SOUT);
    a.addi(R6, R6, -1); // right size
    a.bge(R6, R5, &format!("{p}_stage_left"));
    // right is smaller: child takes [pivot+1, hi); keep [lo, pivot)
    a.addi(CV, SOUT, 1);
    a.mv(CP, HI);
    a.mv(HI, SOUT);
    a.j(&format!("{p}_staged"));
    a.bind(format!("{p}_stage_left"));
    // left is smaller: child takes [lo, pivot); keep [pivot+1, hi)
    a.mv(CV, LO);
    a.mv(CP, SOUT);
    a.addi(LO, SOUT, 1);
    a.bind(format!("{p}_staged"));
    if allow_divide {
        // one token for the child worker, counted before it can exist
        emit_locked_add(a, rt.tokens, 1);
        a.nthr(R12, &format!("{p}_child"));
        a.li(R6, -1);
        a.bne(R12, R6, &format!("{p}_keep_left"));
        // denied: no child was born — return its token
        emit_locked_add(a, rt.tokens, -1);
    }
    // denied or never dividing: defer the half to the private stack; the
    // worker's own token covers its pending work
    a.push_reg(CV);
    a.push_reg(CP);
    a.addi(PENDING, PENDING, 1);
    a.bind(format!("{p}_keep_left"));
    a.j(&format!("{p}_sort"));
    a.bind(format!("{p}_leaf"));
    a.mv(SLO, LO);
    a.mv(SHI, HI);
    a.call("qs_insertion");
    a.bne(PENDING, Reg::ZERO, &format!("{p}_resume"));
    // worker exhausted: release its token and finish
    emit_locked_add(a, rt.tokens, -1);
    a.j(&format!("{p}_finish"));
    a.bind(format!("{p}_resume"));
    a.pop_reg(HI);
    a.pop_reg(LO);
    a.addi(PENDING, PENDING, -1);
    a.j(&format!("{p}_sort"));
    a.bind(format!("{p}_child"));
    a.mv(LO, CV);
    a.mv(HI, CP);
    a.li(PENDING, 0);
    let l = Labels::new(format!("{p}_c"));
    emit_stack_alloc(a, rt, &l);
    a.j(&format!("{p}_sort"));
}

/// Emits the post-join verification: `out sorted_flag; out sum; halt`.
pub fn emit_verify_and_halt(a: &mut Asm, arr: &ArrayLayout) {
    let (i, sum, sorted, prev, cur, addr) = (R5, R6, R7, R8, R9, R10);
    a.li(sorted, 1);
    a.li(sum, 0);
    a.li(prev, i64::MIN);
    a.li(i, 0);
    a.bind("ver_loop");
    a.li(addr, arr.n as i64);
    a.bge(i, addr, "ver_done");
    a.slli(addr, i, 3);
    a.li(cur, arr.base as i64);
    a.add(addr, addr, cur);
    a.ld(cur, 0, addr);
    a.add(sum, sum, cur);
    a.bge(cur, prev, "ver_ok");
    a.li(sorted, 0);
    a.bind("ver_ok");
    a.mv(prev, cur);
    a.addi(i, i, 1);
    a.j("ver_loop");
    a.bind("ver_done");
    a.out(sorted);
    a.out(sum);
    a.halt();
}

/// The QuickSort workload over one list.
#[derive(Debug, Clone)]
pub struct QuickSort {
    values: Vec<i64>,
    /// Componentized-section mark id.
    pub section: u16,
}

impl QuickSort {
    /// Builds the workload for `values`.
    pub fn new(values: Vec<i64>) -> Self {
        QuickSort { values, section: 1 }
    }

    /// The input values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Host-reference output: `[1, sum]`.
    pub fn expected(&self) -> Vec<i64> {
        vec![1, self.values.iter().sum()]
    }

    fn common_tail(&self, a: &mut Asm, rt: &Runtime, arr: &ArrayLayout, l: &Labels) {
        a.bind("w_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "w_die");
        emit_join_spin(a, rt, l);
        a.mark_end(self.section);
        emit_verify_and_halt(a, arr);
        a.bind("w_die");
        emit_stack_free(a, rt);
        a.kthr();
    }

    fn component_program(&self) -> Program {
        let mut d = DataBuilder::new();
        let arr = layout_array(&mut d, &self.values);
        let rt = init_runtime(&mut d, 1, 32, 8192);
        let mut a = Asm::new();
        let l = Labels::new("qs");

        a.mark_start(self.section);
        a.li(PENDING, 0);
        a.li(LO, 0);
        a.li(HI, arr.n as i64);
        emit_stack_alloc(&mut a, &rt, &l);
        a.j("w_sort");
        self.common_tail(&mut a, &rt, &arr, &l);
        emit_sort_body(&mut a, "w", &arr, &rt, true);
        emit_partition(&mut a, &arr, KeyKind::Value, &l);
        emit_insertion(&mut a, &arr, KeyKind::Value, &l);

        Program::new(a.assemble().expect("quicksort component assembles"), d.build(), 1 << 16)
            .with_thread(ThreadSpec::at(0))
    }

    fn sequential_program(&self) -> Program {
        let mut d = DataBuilder::new();
        let arr = layout_array(&mut d, &self.values);
        let rt = init_runtime(&mut d, 1, 2, 8192);
        let mut a = Asm::new();
        let l = Labels::new("qs");

        a.li(PENDING, 0);
        a.li(LO, 0);
        a.li(HI, arr.n as i64);
        emit_stack_alloc(&mut a, &rt, &l);
        a.j("w_sort");
        self.common_tail(&mut a, &rt, &arr, &l);
        emit_sort_body(&mut a, "w", &arr, &rt, false);
        emit_partition(&mut a, &arr, KeyKind::Value, &l);
        emit_insertion(&mut a, &arr, KeyKind::Value, &l);

        Program::new(a.assemble().expect("quicksort sequential assembles"), d.build(), 1 << 16)
            .with_thread(ThreadSpec::at(0))
    }

    /// Static program: thread 0 splits the array into `k` ranges by
    /// repeatedly partitioning the largest one, then all `k` threads sort
    /// their assigned range.
    fn static_program(&self, k: usize) -> Program {
        assert!(k >= 1);
        let mut d = DataBuilder::new();
        let arr = layout_array(&mut d, &self.values);
        let rt = init_runtime(&mut d, k as i64, k + 2, 8192);
        // Range table: k (lo, hi) pairs + a published count + a go flag.
        d.label("ranges");
        let ranges = d.zeros(k * 16);
        let go = d.word(0);
        let mut a = Asm::new();
        let l = Labels::new("qss");
        let my = Reg(21);
        let (cnt, best, bi, tmp, addr, len2) = (Reg(18), Reg(19), Reg(20), R9, R10, R17);

        // Everyone grabs a pooled stack first; thread 0 needs one for the
        // split phase (qs_partition uses the call/push discipline).
        a.li(PENDING, 0);
        emit_stack_alloc(&mut a, &rt, &l);
        a.bne(my, Reg::ZERO, "wait_go");
        // --- thread 0: build the range table ---
        // ranges[0] = (0, n); cnt = 1
        a.li(addr, ranges as i64);
        a.st(Reg::ZERO, 0, addr);
        a.li(tmp, arr.n as i64);
        a.st(tmp, 8, addr);
        a.li(cnt, 1);
        a.bind("split_loop");
        a.li(tmp, k as i64);
        a.bge(cnt, tmp, "publish");
        // find the longest range
        a.li(best, -1);
        a.li(bi, -1);
        a.li(R5, 0); // index
        a.bind("find_loop");
        a.bge(R5, cnt, "found");
        a.slli(addr, R5, 4);
        a.li(tmp, ranges as i64);
        a.add(addr, addr, tmp);
        a.ld(R6, 0, addr); // lo
        a.ld(R7, 8, addr); // hi
        a.sub(len2, R7, R6);
        a.bge(best, len2, "find_next");
        a.mv(best, len2);
        a.mv(bi, R5);
        a.bind("find_next");
        a.addi(R5, R5, 1);
        a.j("find_loop");
        a.bind("found");
        // partition the longest range (if it is still splittable)
        a.slli(addr, bi, 4);
        a.li(tmp, ranges as i64);
        a.add(addr, addr, tmp);
        a.ld(SLO, 0, addr);
        a.ld(SHI, 8, addr);
        a.sub(len2, SHI, SLO);
        a.li(tmp, 3);
        a.blt(len2, tmp, "publish"); // nothing splittable left
        a.push_reg(addr);
        a.call("qs_partition");
        a.pop_reg(addr);
        // ranges[bi] = (lo, pivot); ranges[cnt] = (pivot+1, hi); cnt += 1
        a.st(SOUT, 8, addr);
        a.slli(addr, cnt, 4);
        a.li(tmp, ranges as i64);
        a.add(addr, addr, tmp);
        a.addi(R5, SOUT, 1);
        a.st(R5, 0, addr);
        a.st(SHI, 8, addr);
        a.addi(cnt, cnt, 1);
        a.j("split_loop");
        a.bind("publish");
        // unfilled entries stay (0,0): empty ranges
        a.li(addr, go as i64);
        a.li(tmp, 1);
        a.st(tmp, 0, addr);
        a.j("sort_mine");
        // --- all threads: wait for the table, then sort range `my` ---
        a.bind("wait_go");
        a.li(addr, go as i64);
        a.bind("spin_go");
        a.ld(tmp, 0, addr);
        a.beq(tmp, Reg::ZERO, "spin_go");
        a.bind("sort_mine");
        a.slli(addr, my, 4);
        a.li(tmp, ranges as i64);
        a.add(addr, addr, tmp);
        a.ld(LO, 0, addr);
        a.ld(HI, 8, addr);
        a.bge(LO, HI, "w_empty");
        a.j("w_sort");
        a.bind("w_empty");
        emit_locked_add(&mut a, rt.tokens, -1);
        a.j("w_finish");
        self.common_tail(&mut a, &rt, &arr, &l);
        emit_sort_body(&mut a, "w", &arr, &rt, false);
        emit_partition(&mut a, &arr, KeyKind::Value, &l);
        emit_insertion(&mut a, &arr, KeyKind::Value, &l);

        let mut p =
            Program::new(a.assemble().expect("quicksort static assembles"), d.build(), 1 << 16);
        for t in 0..k {
            p.threads.push(ThreadSpec::at(0).with_reg(my, t as i64));
        }
        p
    }
}

impl Workload for QuickSort {
    fn name(&self) -> &'static str {
        "quicksort"
    }

    fn supports(&self, _variant: Variant) -> bool {
        true
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.sequential_program(),
            Variant::Static(k) => self.static_program(k),
            Variant::Component => self.component_program(),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &self.expected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{random_list, ListShape};
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn list(n: usize, shape: ListShape) -> QuickSort {
        QuickSort::new(random_list(99, n, shape))
    }

    #[test]
    fn component_sorts_on_interp_and_memory_is_sorted() {
        let w = list(500, ListShape::Uniform);
        let p = w.program(Variant::Component);
        let mut i = Interp::new(&p, InterpConfig::default()).unwrap();
        let out = i.run(100_000_000).unwrap();
        w.check(&out.output).unwrap();
        // Read back the whole array: must equal the host-sorted input.
        let base = p.symbol("arr");
        let mut expected = w.values().to_vec();
        expected.sort_unstable();
        for (k, &e) in expected.iter().enumerate() {
            assert_eq!(i.memory().read_i64(base + 8 * k as u64).unwrap(), e, "arr[{k}]");
        }
    }

    #[test]
    fn component_sorts_every_shape_on_somt() {
        for shape in ListShape::ALL {
            let w = list(300, shape);
            let p = w.program(Variant::Component);
            let o =
                Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(500_000_000).unwrap();
            w.check(&o.output).unwrap_or_else(|e| panic!("{shape:?}: {e}"));
        }
    }

    #[test]
    fn sequential_sorts_on_superscalar() {
        let w = list(400, ListShape::Uniform);
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(500_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_requested, 0);
    }

    #[test]
    fn static_sorts_on_smt() {
        let w = list(600, ListShape::Uniform);
        let p = w.program(Variant::Static(8));
        assert_eq!(p.threads.len(), 8);
        let o = Machine::new(MachineConfig::table1_smt(), &p).unwrap().run(500_000_000).unwrap();
        w.check(&o.output).unwrap();
    }

    #[test]
    fn component_beats_sequential() {
        let w = list(1500, ListShape::Uniform);
        let comp = Machine::new(MachineConfig::table1_somt(), &w.program(Variant::Component))
            .unwrap()
            .run(1_000_000_000)
            .unwrap();
        let seq =
            Machine::new(MachineConfig::table1_superscalar(), &w.program(Variant::Sequential))
                .unwrap()
                .run(1_000_000_000)
                .unwrap();
        w.check(&comp.output).unwrap();
        w.check(&seq.output).unwrap();
        let speedup = seq.cycles() as f64 / comp.cycles() as f64;
        assert!(speedup > 1.3, "speedup {speedup:.2}");
    }

    #[test]
    fn division_tree_is_irregular_like_figure6() {
        let w = list(2000, ListShape::Uniform);
        let o = Machine::new(MachineConfig::table1_somt(), &w.program(Variant::Component))
            .unwrap()
            .run(1_000_000_000)
            .unwrap();
        assert!(o.tree.len() > 4, "expected several divisions");
        assert!(o.tree.max_depth() >= 2, "division genealogy should nest");
    }
}
