//! The Table 1 memory hierarchy: split L1 I/D caches over a unified L2
//! over flat main memory.

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::config::MachineConfig;

use crate::cache::{Cache, CacheStats};

/// Which levels served an access (for statistics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both caches; served by main memory.
    Memory,
}

/// Result of a timed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Total latency in cycles (port queuing included).
    pub latency: u64,
    /// Deepest level that had to serve the access.
    pub served_by: ServedBy,
}

/// The full hierarchy. On a CMP configuration every core owns private
/// L1 caches and all cores share the unified L2 (the paper's
/// shared-memory CMP extrapolation in §5).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    mem_latency: u64,
    mem_accesses: u64,
}

impl Hierarchy {
    /// Builds the single-core (SMT) hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::new_cmp(cfg, 1)
    }

    /// Builds a CMP hierarchy: `cores` pairs of private L1s over one
    /// shared L2.
    pub fn new_cmp(cfg: &MachineConfig, cores: usize) -> Self {
        assert!(cores >= 1);
        Hierarchy {
            l1i: (0..cores).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: Cache::new(cfg.l2),
            mem_latency: cfg.mem_latency,
            mem_accesses: 0,
        }
    }

    /// Number of cores (private L1 pairs).
    pub fn cores(&self) -> usize {
        self.l1d.len()
    }

    fn access_through(
        l1: &mut Cache,
        l2: &mut Cache,
        mem_latency: u64,
        mem_accesses: &mut u64,
        addr: u64,
        now: u64,
    ) -> Access {
        let mut latency = l1.port_delay(now) + l1.latency();
        if l1.access(addr) {
            return Access { latency, served_by: ServedBy::L1 };
        }
        latency += l2.port_delay(now) + l2.latency();
        if l2.access(addr) {
            return Access { latency, served_by: ServedBy::L2 };
        }
        *mem_accesses += 1;
        latency += mem_latency;
        Access { latency, served_by: ServedBy::Memory }
    }

    /// Timed data access (load or store) at byte address `addr`, core 0.
    pub fn access_data(&mut self, addr: u64, now: u64) -> Access {
        self.access_data_on(0, addr, now)
    }

    /// Timed data access through `core`'s private L1-D.
    pub fn access_data_on(&mut self, core: usize, addr: u64, now: u64) -> Access {
        Self::access_through(
            &mut self.l1d[core],
            &mut self.l2,
            self.mem_latency,
            &mut self.mem_accesses,
            addr,
            now,
        )
    }

    /// Timed instruction-fetch access at byte address `addr`, core 0.
    pub fn access_instr(&mut self, addr: u64, now: u64) -> Access {
        self.access_instr_on(0, addr, now)
    }

    /// Timed instruction fetch through `core`'s private L1-I.
    pub fn access_instr_on(&mut self, core: usize, addr: u64, now: u64) -> Access {
        Self::access_through(
            &mut self.l1i[core],
            &mut self.l2,
            self.mem_latency,
            &mut self.mem_accesses,
            addr,
            now,
        )
    }

    fn sum(stats: impl Iterator<Item = CacheStats>) -> CacheStats {
        stats.fold(CacheStats::default(), |a, s| CacheStats {
            accesses: a.accesses + s.accesses,
            hits: a.hits + s.hits,
            misses: a.misses + s.misses,
        })
    }

    /// L1-I statistics, summed over cores.
    pub fn l1i_stats(&self) -> CacheStats {
        Self::sum(self.l1i.iter().map(Cache::stats))
    }

    /// L1-D statistics, summed over cores.
    pub fn l1d_stats(&self) -> CacheStats {
        Self::sum(self.l1d.iter().map(Cache::stats))
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Main-memory accesses.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_accesses
    }

    /// Configured main-memory latency.
    pub fn mem_latency(&self) -> u64 {
        self.mem_latency
    }

    /// Line size shared by all levels.
    pub fn line_bytes(&self) -> u64 {
        self.l1d[0].params().line_bytes as u64
    }

    /// Drops contents and statistics of every level.
    pub fn reset(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.reset();
        }
        self.l2.reset();
        self.mem_accesses = 0;
    }

    /// Serializes every level's contents plus the memory-access counter
    /// for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.l1d.len());
        for c in self.l1i.iter().chain(self.l1d.iter()) {
            c.encode(w);
        }
        self.l2.encode(w);
        w.u64(self.mem_accesses);
    }

    /// Restores state written by [`Hierarchy::encode`] into a hierarchy
    /// built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on core-count or cache-geometry mismatch,
    /// or on truncated/ill-formed input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let cores = r.usize()?;
        if cores != self.l1d.len() {
            return Err(CodecError::Invalid("hierarchy core count mismatch"));
        }
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.decode_into(r)?;
        }
        self.l2.decode_into(r)?;
        self.mem_accesses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(&MachineConfig::table1_somt())
    }

    #[test]
    fn cold_access_goes_to_memory() {
        let mut m = h();
        let a = m.access_data(0x1_0000, 0);
        assert_eq!(a.served_by, ServedBy::Memory);
        // 1 (L1) + 12 (L2) + 200 (mem) = 213 with no port queuing.
        assert_eq!(a.latency, 1 + 12 + 200);
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = h();
        m.access_data(0x1_0000, 0);
        let a = m.access_data(0x1_0008, 1);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(a.latency, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = h();
        m.access_data(0, 0);
        // Walk far past L1 capacity (8 kB) but inside L2 (1 MB).
        for i in 1..1000u64 {
            m.access_data(i * 64, i);
        }
        let a = m.access_data(0, 2000);
        assert_eq!(a.served_by, ServedBy::L2);
        assert_eq!(a.latency, 1 + 12);
    }

    #[test]
    fn instruction_and_data_paths_are_split() {
        let mut m = h();
        m.access_instr(0x2000, 0);
        assert_eq!(m.l1i_stats().accesses, 1);
        assert_eq!(m.l1d_stats().accesses, 0);
        // Same address via the data path still misses L1D but hits L2.
        let a = m.access_data(0x2000, 1);
        assert_eq!(a.served_by, ServedBy::L2);
    }

    #[test]
    fn mem_access_counter() {
        let mut m = h();
        m.access_data(0, 0);
        m.access_data(1 << 21, 0); // far away, cold
        assert_eq!(m.mem_accesses(), 2);
        m.access_data(0, 1);
        assert_eq!(m.mem_accesses(), 2);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = h();
        m.access_data(0, 0);
        m.reset();
        assert_eq!(m.l1d_stats().accesses, 0);
        assert_eq!(m.access_data(0, 0).served_by, ServedBy::Memory);
    }

    #[test]
    fn port_queuing_adds_latency_same_cycle() {
        let mut m = h();
        // Warm one line.
        m.access_data(0x3000, 0);
        // L1D has 2 ports: the 3rd access in cycle 5 waits one cycle.
        assert_eq!(m.access_data(0x3000, 5).latency, 1);
        assert_eq!(m.access_data(0x3000, 5).latency, 1);
        assert_eq!(m.access_data(0x3000, 5).latency, 2);
    }
}

#[cfg(test)]
mod cmp_tests {
    use super::*;

    #[test]
    fn cmp_cores_have_private_l1s_over_a_shared_l2() {
        let mut m = Hierarchy::new_cmp(&MachineConfig::table1_somt(), 2);
        assert_eq!(m.cores(), 2);
        // Core 0 warms a line; core 1 still misses its private L1 but
        // hits the shared L2.
        m.access_data_on(0, 0x5000, 0);
        let a = m.access_data_on(1, 0x5000, 1);
        assert_eq!(a.served_by, ServedBy::L2);
        // Aggregate stats sum both cores.
        assert_eq!(m.l1d_stats().accesses, 2);
        assert_eq!(m.l1d_stats().misses, 2);
        assert_eq!(m.l2_stats().hits, 1);
        assert_eq!(m.mem_accesses(), 1);
    }
}
