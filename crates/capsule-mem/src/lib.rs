//! Memory hierarchy of the CAPSULE reproduction.
//!
//! Implements the Table 1 hierarchy of the paper: split 8 kB L1-D / 16 kB
//! L1-I (1 cycle), unified 1 MB L2 (12 cycles), and 200-cycle main memory,
//! as set-associative LRU caches with a per-cycle port model.
//!
//! # Example
//!
//! ```
//! use capsule_core::config::MachineConfig;
//! use capsule_mem::{Hierarchy, ServedBy};
//!
//! let mut mem = Hierarchy::new(&MachineConfig::table1_somt());
//! let cold = mem.access_data(0x8000, 0);
//! assert_eq!(cold.served_by, ServedBy::Memory);
//! let warm = mem.access_data(0x8000, 1);
//! assert_eq!(warm.served_by, ServedBy::L1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheStats};
pub use hierarchy::{Access, Hierarchy, ServedBy};
