//! A set-associative cache with true-LRU replacement and a simple port
//! model.
//!
//! The timing model is intentionally SimpleScalar-like: an access pays the
//! level's hit latency, plus a port-queuing delay when more than `ports`
//! accesses arrive in one cycle, plus the lower level's latency on a miss.
//! Lines are allocated on both read and write misses (write-allocate);
//! write-back traffic is not separately charged (documented simplification
//! in DESIGN.md).

use capsule_core::config::CacheParams;

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    last_use: u64,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    use_clock: u64,
    // Port accounting for the current cycle.
    port_cycle: u64,
    port_used: usize,
}

impl Cache {
    /// Builds a cache from its parameters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheParams::num_sets`]).
    pub fn new(params: CacheParams) -> Self {
        let sets = vec![vec![Line::default(); params.assoc]; params.num_sets()];
        Cache {
            params,
            sets,
            stats: CacheStats::default(),
            use_clock: 0,
            port_cycle: 0,
            port_used: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.params.line_bytes as u64;
        let n = self.sets.len() as u64;
        ((line % n) as usize, line / n)
    }

    /// Looks up `addr`, allocating the line on a miss. Returns `true` on a
    /// hit. Does not include port accounting; see [`Cache::port_delay`].
    pub fn access(&mut self, addr: u64) -> bool {
        self.use_clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.set_index(addr);
        let lines = &mut self.sets[set];
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = self.use_clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Choose the invalid way, else true-LRU victim.
        let victim = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) =
                    lines.iter().enumerate().min_by_key(|(_, l)| l.last_use).expect("assoc > 0");
                i
            }
        };
        lines[victim] = Line { valid: true, tag, last_use: self.use_clock };
        false
    }

    /// Non-allocating probe: would `addr` hit right now?
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Extra cycles an access starting at `now` waits for a free port.
    ///
    /// With `p` ports, the `k`-th access of one cycle waits `k / p` cycles.
    pub fn port_delay(&mut self, now: u64) -> u64 {
        if self.port_cycle != now {
            self.port_cycle = now;
            self.port_used = 0;
        }
        let delay = (self.port_used / self.params.ports) as u64;
        self.port_used += 1;
        delay
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.params.latency
    }

    /// Number of currently valid lines (for invariants/tests).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.params.assoc
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for l in set {
                *l = Line::default();
            }
        }
        self.stats = CacheStats::default();
        self.use_clock = 0;
        self.port_cycle = 0;
        self.port_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheParams { size_bytes: 512, line_bytes: 64, assoc: 2, latency: 1, ports: 1 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was the victim
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(i * 64);
        }
        assert!(c.valid_lines() <= c.capacity_lines());
        assert_eq!(c.valid_lines(), c.capacity_lines()); // fully warm
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..3 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
    }

    #[test]
    fn port_delay_queues_oversubscription() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
            ports: 2,
        });
        assert_eq!(c.port_delay(10), 0);
        assert_eq!(c.port_delay(10), 0);
        assert_eq!(c.port_delay(10), 1); // third access in one cycle waits
        assert_eq!(c.port_delay(10), 1);
        assert_eq!(c.port_delay(10), 2);
        assert_eq!(c.port_delay(11), 0); // new cycle resets
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_rate_math() {
        let s = CacheStats { accesses: 10, hits: 7, misses: 3 };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
