//! A set-associative cache with true-LRU replacement and a simple port
//! model.
//!
//! The timing model is intentionally SimpleScalar-like: an access pays the
//! level's hit latency, plus a port-queuing delay when more than `ports`
//! accesses arrive in one cycle, plus the lower level's latency on a miss.
//! Lines are allocated on both read and write misses (write-allocate);
//! write-back traffic is not separately charged (documented simplification
//! in DESIGN.md).

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::config::CacheParams;

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    last_use: u64,
}

/// Precomputed address-decomposition strides: shift/mask when both the
/// line size and the set count are powers of two (every geometry in the
/// paper's Table 1 is), div/mod otherwise. Both paths decompose an
/// address into the identical `(set, tag)` pair.
#[derive(Debug, Clone, Copy)]
enum Geometry {
    Pow2 {
        /// `log2(line_bytes)`.
        line_shift: u32,
        /// `num_sets - 1`.
        set_mask: u64,
        /// `log2(num_sets)`.
        set_shift: u32,
    },
    General {
        line_bytes: u64,
        num_sets: u64,
    },
}

impl Geometry {
    fn new(line_bytes: u64, num_sets: u64) -> Self {
        if line_bytes.is_power_of_two() && num_sets.is_power_of_two() {
            Geometry::Pow2 {
                line_shift: line_bytes.trailing_zeros(),
                set_mask: num_sets - 1,
                set_shift: num_sets.trailing_zeros(),
            }
        } else {
            Geometry::General { line_bytes, num_sets }
        }
    }

    /// `(set, tag)` of an address.
    fn decompose(self, addr: u64) -> (usize, u64) {
        match self {
            Geometry::Pow2 { line_shift, set_mask, set_shift } => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            Geometry::General { line_bytes, num_sets } => {
                let line = addr / line_bytes;
                ((line % num_sets) as usize, line / num_sets)
            }
        }
    }
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    geometry: Geometry,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    use_clock: u64,
    // Port accounting for the current cycle.
    port_cycle: u64,
    port_used: usize,
}

impl Cache {
    /// Builds a cache from its parameters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheParams::num_sets`]).
    pub fn new(params: CacheParams) -> Self {
        let sets = vec![vec![Line::default(); params.assoc]; params.num_sets()];
        let geometry = Geometry::new(params.line_bytes as u64, sets.len() as u64);
        Cache {
            params,
            geometry,
            sets,
            stats: CacheStats::default(),
            use_clock: 0,
            port_cycle: 0,
            port_used: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, addr: u64) -> (usize, u64) {
        self.geometry.decompose(addr)
    }

    /// Looks up `addr`, allocating the line on a miss. Returns `true` on a
    /// hit. Does not include port accounting; see [`Cache::port_delay`].
    pub fn access(&mut self, addr: u64) -> bool {
        self.use_clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.set_index(addr);
        let lines = &mut self.sets[set];
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = self.use_clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Choose the invalid way, else true-LRU victim.
        let victim = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) =
                    lines.iter().enumerate().min_by_key(|(_, l)| l.last_use).expect("assoc > 0");
                i
            }
        };
        lines[victim] = Line { valid: true, tag, last_use: self.use_clock };
        false
    }

    /// Non-allocating probe: would `addr` hit right now?
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Extra cycles an access starting at `now` waits for a free port.
    ///
    /// With `p` ports, the `k`-th access of one cycle waits `k / p` cycles.
    pub fn port_delay(&mut self, now: u64) -> u64 {
        if self.port_cycle != now {
            self.port_cycle = now;
            self.port_used = 0;
        }
        let delay = (self.port_used / self.params.ports) as u64;
        self.port_used += 1;
        delay
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.params.latency
    }

    /// Number of currently valid lines (for invariants/tests).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.params.assoc
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for l in set {
                *l = Line::default();
            }
        }
        self.stats = CacheStats::default();
        self.use_clock = 0;
        self.port_cycle = 0;
        self.port_used = 0;
    }

    /// Serializes contents, statistics and port state for checkpoints.
    /// Geometry is not written; it is rebuilt from the parameters the
    /// receiving cache was constructed with.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.sets.len());
        w.usize(self.params.assoc);
        for set in &self.sets {
            for l in set {
                w.bool(l.valid);
                w.u64(l.tag);
                w.u64(l.last_use);
            }
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.use_clock);
        w.u64(self.port_cycle);
        w.usize(self.port_used);
    }

    /// Restores state written by [`Cache::encode`] into a cache of the
    /// same geometry.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when the recorded geometry does not match
    /// this cache, or on truncated/ill-formed input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let sets = r.usize()?;
        let assoc = r.usize()?;
        if sets != self.sets.len() || assoc != self.params.assoc {
            return Err(CodecError::Invalid("cache geometry mismatch"));
        }
        for set in &mut self.sets {
            for l in set {
                l.valid = r.bool()?;
                l.tag = r.u64()?;
                l.last_use = r.u64()?;
            }
        }
        self.stats.accesses = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.use_clock = r.u64()?;
        self.port_cycle = r.u64()?;
        self.port_used = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheParams { size_bytes: 512, line_bytes: 64, assoc: 2, latency: 1, ports: 1 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was the victim
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(i * 64);
        }
        assert!(c.valid_lines() <= c.capacity_lines());
        assert_eq!(c.valid_lines(), c.capacity_lines()); // fully warm
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..3 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
    }

    #[test]
    fn port_delay_queues_oversubscription() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
            ports: 2,
        });
        assert_eq!(c.port_delay(10), 0);
        assert_eq!(c.port_delay(10), 0);
        assert_eq!(c.port_delay(10), 1); // third access in one cycle waits
        assert_eq!(c.port_delay(10), 1);
        assert_eq!(c.port_delay(10), 2);
        assert_eq!(c.port_delay(11), 0); // new cycle resets
    }

    #[test]
    fn pow2_geometry_decomposes_like_div_mod() {
        // The shift/mask fast path must produce the exact (set, tag)
        // pairs of the general div/mod path for pow2 geometry.
        let fast = Geometry::new(64, 4);
        assert!(matches!(fast, Geometry::Pow2 { .. }));
        let slow = Geometry::General { line_bytes: 64, num_sets: 4 };
        for addr in [0, 1, 63, 64, 255, 256, 0x100, 0x13f, 0xdead_beef, u64::MAX, u64::MAX - 4095] {
            assert_eq!(fast.decompose(addr), slow.decompose(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn non_pow2_set_count_falls_back_to_div_mod() {
        // 3 sets x 2 ways: not a pow2 set count, must use the general path
        // and still behave as a correct set-associative cache.
        let mut c = Cache::new(CacheParams {
            size_bytes: 384,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
            ports: 1,
        });
        assert!(matches!(c.geometry, Geometry::General { .. }));
        assert_eq!(c.sets.len(), 3);
        // Lines 0 and 3 share set 0 (line % 3); line 1 does not.
        assert!(!c.access(0));
        assert!(!c.access(3 * 64));
        assert!(c.access(0));
        assert!(c.access(3 * 64));
        assert!(!c.access(64));
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_victim_is_oldest_among_valid_ways() {
        // 4-way set; touch a,b,c,d then re-touch in order d,a,c. The next
        // conflicting line must evict b (the least recently used), not the
        // lowest way or the first-filled way.
        let mut c = Cache::new(CacheParams {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 4,
            latency: 1,
            ports: 1,
        });
        let sets = c.sets.len() as u64; // 4
        let stride = sets * 64;
        let (a, b, d, e, f) = (0, stride, 2 * stride, 3 * stride, 4 * stride);
        for addr in [a, b, d, e] {
            assert!(!c.access(addr));
        }
        for addr in [e, a, d] {
            assert!(c.access(addr));
        }
        assert!(!c.access(f)); // evicts b (LRU), not way 0 or first-filled
        assert!(!c.access(b)); // b really was the victim; this evicts e
        assert!(c.access(a)); // the recently used ways all survived
        assert!(c.access(d));
        assert!(c.access(f));
        assert!(!c.access(e)); // e was the second victim
    }

    #[test]
    fn port_contention_orders_by_arrival() {
        // One port: the k-th same-cycle access waits k cycles, strictly in
        // arrival order; a new cycle drains the queue model.
        let mut c = tiny();
        let delays: Vec<u64> = (0..4).map(|_| c.port_delay(100)).collect();
        assert_eq!(delays, vec![0, 1, 2, 3]);
        assert_eq!(c.port_delay(101), 0);
        // Going back in time (out-of-order stage interleaving across
        // threads) still resets per distinct cycle stamp.
        assert_eq!(c.port_delay(100), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_rate_math() {
        let s = CacheStats { accesses: 10, hits: 7, misses: 3 };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
