//! Property tests of the cache model.

use capsule_core::config::CacheParams;
use capsule_mem::Cache;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = CacheParams> {
    // line 16..=128 (pow2), assoc 1..=8, sets 2..=64 (pow2)
    (4u32..8, 0u32..4, 1u32..7).prop_map(|(line_log, assoc_log, sets_log)| {
        let line_bytes = 1usize << line_log;
        let assoc = 1usize << assoc_log;
        let sets = 1usize << sets_log;
        CacheParams { size_bytes: line_bytes * assoc * sets, line_bytes, assoc, latency: 1, ports: 1 }
    })
}

proptest! {
    /// The number of valid lines never exceeds the capacity.
    #[test]
    fn capacity_is_never_exceeded(
        p in params(),
        addrs in prop::collection::vec(0u64..1 << 20, 1..2000),
    ) {
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
            prop_assert!(c.valid_lines() <= c.capacity_lines());
        }
    }

    /// An access to a line always hits immediately afterwards.
    #[test]
    fn immediate_reuse_hits(p in params(), addrs in prop::collection::vec(0u64..1 << 20, 1..500)) {
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
            prop_assert!(c.probe(a), "line {a:#x} must be resident right after access");
        }
    }

    /// Hits + misses always equals accesses.
    #[test]
    fn stats_balance(p in params(), addrs in prop::collection::vec(0u64..1 << 16, 0..1000)) {
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    /// A working set no larger than one set's associativity never misses
    /// after the first touch (true LRU has no pathological interference
    /// within a set).
    #[test]
    fn lru_retains_small_working_sets(p in params(), seed in 0u64..1000) {
        let mut c = Cache::new(p);
        // Pick `assoc` lines that all map to the same set.
        let sets = p.num_sets() as u64;
        let set = seed % sets;
        let lines: Vec<u64> = (0..p.assoc as u64)
            .map(|way| (way * sets + set) * p.line_bytes as u64)
            .collect();
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..3 {
            for &a in &lines {
                prop_assert!(c.access(a), "working set within assoc must keep hitting");
            }
        }
    }
}
