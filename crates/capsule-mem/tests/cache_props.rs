//! Property tests of the cache model.
//!
//! Parameter/address sets come from a fixed-seed [`capsule_core::rng`]
//! stream, so the suite is deterministic and hermetic. Build with
//! `--features props` for a much larger sweep.

use capsule_core::config::CacheParams;
use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_mem::Cache;

fn cases(default: usize) -> usize {
    if cfg!(feature = "props") {
        default * 20
    } else {
        default
    }
}

/// Random cache shape: line 16..=128 (pow2), assoc 1..=8 (pow2),
/// sets 2..=64 (pow2).
fn random_params(rng: &mut impl Rng) -> CacheParams {
    let line_bytes = 1usize << (rng.u64_below(4) + 4);
    let assoc = 1usize << rng.u64_below(4);
    let sets = 1usize << (rng.u64_below(6) + 1);
    CacheParams { size_bytes: line_bytes * assoc * sets, line_bytes, assoc, latency: 1, ports: 1 }
}

fn random_addrs(rng: &mut impl Rng, max: usize, bits: u32) -> Vec<u64> {
    let len = rng.usize_below(max) + 1;
    (0..len).map(|_| rng.u64_below(1 << bits)).collect()
}

/// The number of valid lines never exceeds the capacity.
#[test]
fn capacity_is_never_exceeded() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xca4e_0001);
    for _ in 0..cases(32) {
        let p = random_params(&mut rng);
        let addrs = random_addrs(&mut rng, 2000, 20);
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
            assert!(c.valid_lines() <= c.capacity_lines(), "{p:?}");
        }
    }
}

/// An access to a line always hits immediately afterwards.
#[test]
fn immediate_reuse_hits() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xca4e_0002);
    for _ in 0..cases(32) {
        let p = random_params(&mut rng);
        let addrs = random_addrs(&mut rng, 500, 20);
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
            assert!(c.probe(a), "line {a:#x} must be resident right after access ({p:?})");
        }
    }
}

/// Hits + misses always equals accesses.
#[test]
fn stats_balance() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xca4e_0003);
    for _ in 0..cases(32) {
        let p = random_params(&mut rng);
        let addrs = random_addrs(&mut rng, 1000, 16);
        let mut c = Cache::new(p);
        for a in addrs {
            c.access(a);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "{p:?}");
    }
}

/// A working set no larger than one set's associativity never misses
/// after the first touch (true LRU has no pathological interference
/// within a set).
#[test]
fn lru_retains_small_working_sets() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xca4e_0004);
    for _ in 0..cases(64) {
        let p = random_params(&mut rng);
        let mut c = Cache::new(p);
        // Pick `assoc` lines that all map to the same set.
        let sets = p.num_sets() as u64;
        let set = rng.u64_below(sets);
        let lines: Vec<u64> =
            (0..p.assoc as u64).map(|way| (way * sets + set) * p.line_bytes as u64).collect();
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..3 {
            for &a in &lines {
                assert!(c.access(a), "working set within assoc must keep hitting ({p:?})");
            }
        }
    }
}
