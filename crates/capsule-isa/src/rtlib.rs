//! Reusable assembly fragments — the "binary libraries for component
//! programming" that the paper's toolchain links into post-processed
//! programs (§3.2).
//!
//! Provided building blocks:
//!
//! - a **token counter**: each live worker holds one token (its private
//!   stack of deferred work is covered by its own token); the ancestor
//!   joins by spinning until the counter reaches zero;
//! - a **stack pool**: fixed pre-allocated stacks handed out through a
//!   locked free list, so a freshly divided worker can obtain a private
//!   stack (the paper measures ~15 cycles of software overhead per
//!   division for this);
//! - a **phase barrier** for statically parallelized variants;
//! - [`Labels`], a tiny gensym so emitters can be instantiated repeatedly
//!   without label collisions.
//!
//! Register conventions used by every emitter here:
//!
//! - `r24`–`r27` are scratch, clobbered freely by emitters;
//! - `r28` holds the worker's stack-pool slot id from
//!   [`emit_stack_alloc`] until [`emit_stack_free`];
//! - `sp` (`r30`) is the private stack pointer.

use std::cell::Cell;

use crate::asm::Asm;
use crate::program::DataBuilder;
use crate::reg::Reg;

/// First scratch register reserved for runtime emitters.
pub const T0: Reg = Reg(24);
/// Second scratch register reserved for runtime emitters.
pub const T1: Reg = Reg(25);
/// Third scratch register reserved for runtime emitters.
pub const T2: Reg = Reg(26);
/// Fourth scratch register reserved for runtime emitters.
pub const T3: Reg = Reg(27);
/// Holds the stack-pool slot id of the current worker.
pub const STACK_ID: Reg = Reg(28);

/// Label generator: `Labels::new("qs")` then `l.fresh("loop")` yields
/// `qs_loop_0`, `qs_loop_1`, ... — unique across emitter instantiations.
#[derive(Debug)]
pub struct Labels {
    prefix: String,
    n: Cell<u32>,
}

impl Labels {
    /// Creates a generator with a distinguishing prefix.
    pub fn new(prefix: impl Into<String>) -> Self {
        Labels { prefix: prefix.into(), n: Cell::new(0) }
    }

    /// Returns a fresh label containing `name`.
    pub fn fresh(&self, name: &str) -> String {
        let i = self.n.get();
        self.n.set(i + 1);
        format!("{}_{}_{}", self.prefix, name, i)
    }
}

/// Addresses of the shared runtime globals laid out by [`init_runtime`].
#[derive(Debug, Clone, Copy)]
pub struct Runtime {
    /// Token counter cell (join).
    pub tokens: u64,
    /// Stack pool: free-list head cell (slot id or −1).
    pub pool_head: u64,
    /// Stack pool: next-link array base.
    pub pool_next: u64,
    /// Stack pool: first stack byte.
    pub pool_base: u64,
    /// Bytes per pooled stack.
    pub stack_bytes: usize,
    /// Number of pooled stacks.
    pub pool_slots: usize,
}

/// Lays out the runtime globals: the token counter (initialized to
/// `initial_tokens`) and a stack pool of `pool_slots` stacks of
/// `stack_bytes` each, all slots free.
pub fn init_runtime(
    d: &mut DataBuilder,
    initial_tokens: i64,
    pool_slots: usize,
    stack_bytes: usize,
) -> Runtime {
    assert!(pool_slots > 0 && stack_bytes.is_multiple_of(16), "stack pool must be 16-aligned");
    let tokens = d.word(initial_tokens);
    let pool_head = d.word(0); // slot 0 is the first free slot
    let next: Vec<i64> =
        (0..pool_slots).map(|i| if i + 1 < pool_slots { (i + 1) as i64 } else { -1 }).collect();
    let pool_next = d.words(&next);
    d.align(16);
    let pool_base = d.zeros(pool_slots * stack_bytes);
    Runtime { tokens, pool_head, pool_next, pool_base, stack_bytes, pool_slots }
}

/// Emits a locked `*addr += delta` on a fixed global cell.
pub fn emit_locked_add(a: &mut Asm, addr: u64, delta: i64) {
    a.li(T0, addr as i64);
    a.mlock(T0);
    a.ld(T1, 0, T0);
    a.addi(T1, T1, delta);
    a.st(T1, 0, T0);
    a.munlock(T0);
}

/// Emits the join spin: wait until the token counter reaches zero.
pub fn emit_join_spin(a: &mut Asm, rt: &Runtime, l: &Labels) {
    let spin = l.fresh("join");
    a.li(T0, rt.tokens as i64);
    a.bind(&spin);
    a.ld(T1, 0, T0);
    a.bne(T1, Reg::ZERO, &spin);
}

/// Emits a stack allocation from the pool: spins until a slot is free,
/// then sets `sp` to the top of the allocated stack and `STACK_ID` to the
/// slot id.
pub fn emit_stack_alloc(a: &mut Asm, rt: &Runtime, l: &Labels) {
    let retry = l.fresh("stkalloc");
    a.bind(&retry);
    a.li(T0, rt.pool_head as i64);
    a.mlock(T0);
    a.ld(T1, 0, T0); // head slot id
    a.li(T2, -1);
    a.bne(T1, T2, &format!("{retry}_got"));
    a.munlock(T0);
    a.j(&retry); // pool exhausted: spin until a death frees one
    a.bind(format!("{retry}_got"));
    // head = next[head]
    a.slli(T2, T1, 3);
    a.li(T3, rt.pool_next as i64);
    a.add(T2, T2, T3);
    a.ld(T2, 0, T2);
    a.st(T2, 0, T0);
    a.munlock(T0);
    a.mv(STACK_ID, T1);
    // sp = pool_base + (id + 1) * stack_bytes  (top of the slot)
    a.addi(T1, T1, 1);
    a.li(T2, rt.stack_bytes as i64);
    a.mul(T1, T1, T2);
    a.li(T2, rt.pool_base as i64);
    a.add(Reg::SP, T1, T2);
}

/// Emits the matching stack free: returns `STACK_ID` to the pool.
pub fn emit_stack_free(a: &mut Asm, rt: &Runtime) {
    a.li(T0, rt.pool_head as i64);
    a.mlock(T0);
    a.ld(T1, 0, T0); // old head
    a.slli(T2, STACK_ID, 3);
    a.li(T3, rt.pool_next as i64);
    a.add(T2, T2, T3);
    a.st(T1, 0, T2); // next[id] = old head
    a.st(STACK_ID, 0, T0); // head = id
    a.munlock(T0);
}

/// Addresses of a phase barrier laid out by [`init_barrier`].
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    /// Arrived-count cell.
    pub count: u64,
    /// Phase-number cell.
    pub phase: u64,
    /// Number of participating threads.
    pub parties: usize,
}

/// Lays out a phase barrier for `parties` threads.
pub fn init_barrier(d: &mut DataBuilder, parties: usize) -> Barrier {
    let count = d.word(0);
    let phase = d.word(0);
    Barrier { count, phase, parties }
}

/// Emits a barrier wait. All `parties` threads must call it; the last
/// arriver advances the phase and releases the rest.
pub fn emit_barrier_wait(a: &mut Asm, b: &Barrier, l: &Labels) {
    let spin = l.fresh("bar");
    a.li(T0, b.count as i64);
    a.mlock(T0);
    // my_phase = *phase — read under the count lock so a racing last
    // arriver cannot advance the phase between our read and our arrival.
    a.li(T2, b.phase as i64);
    a.ld(T3, 0, T2);
    a.ld(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.li(T2, b.parties as i64);
    a.bne(T1, T2, &format!("{spin}_notlast"));
    // last arriver: reset count and bump phase before releasing the lock
    a.st(Reg::ZERO, 0, T0);
    a.li(T2, b.phase as i64);
    a.addi(T1, T3, 1);
    a.st(T1, 0, T2);
    a.munlock(T0);
    a.j(&format!("{spin}_done"));
    a.bind(format!("{spin}_notlast"));
    a.st(T1, 0, T0);
    a.munlock(T0);
    // spin until phase changes
    a.li(T0, b.phase as i64);
    a.bind(&spin);
    a.ld(T1, 0, T0);
    a.beq(T1, T3, &spin);
    a.bind(format!("{spin}_done"));
}

/// Emits `push rs` onto the private stack (16-byte slots are the caller's
/// business; this pushes one 8-byte word).
pub fn emit_push(a: &mut Asm, rs: Reg) {
    a.push_reg(rs);
}

/// Emits `pop rd` from the private stack.
pub fn emit_pop(a: &mut Asm, rd: Reg) {
    a.pop_reg(rd);
}

/// Emits a generic *divide-in-half range worker* — the paper's canonical
/// component shape (Perceptron splits its neuron group, LZW splits its
/// dictionary search range this way).
///
/// Control enters at `{p}_work` with the range in `A0`/`A1` and leaves to
/// `{p}_finish` (bound by the caller) once the worker's range and private
/// stack are exhausted. Ranges of at most `leaf` elements are handed to
/// `emit_leaf`, which must process `[A0, A1)` and may clobber `r7`–`r11`,
/// `r14`–`r20` and FP registers, but must preserve `A0`, `A1`, `r13`,
/// `r21`–`r23` and the `T*`/`STACK_ID` conventions.
///
/// When `allow_divide` is false the probe is compiled out and the worker
/// degenerates to an explicit-stack traversal (used by sequential
/// variants).
pub fn emit_split_range_worker(
    a: &mut Asm,
    p: &str,
    rt: &Runtime,
    leaf: i64,
    allow_divide: bool,
    emit_leaf: impl FnOnce(&mut Asm),
) {
    use crate::reg::Reg;
    let lo = Reg::A0;
    let hi = Reg::A1;
    let cv = Reg::A2;
    let cp = Reg::A3;
    let pending = Reg(13);
    let r5 = Reg(5);
    let r6 = Reg(6);
    let probe = Reg(12);

    a.bind(format!("{p}_work"));
    a.sub(r5, hi, lo);
    a.li(r6, leaf);
    a.bge(r6, r5, &format!("{p}_leaf"));
    // mid = lo + len/2; stage the right half for a child
    a.srai(r5, r5, 1);
    a.add(cv, lo, r5);
    a.mv(cp, hi);
    if allow_divide {
        // one token for the child worker, counted before it can exist
        emit_locked_add(a, rt.tokens, 1);
        a.nthr(probe, &format!("{p}_child"));
        a.li(r6, -1);
        a.bne(probe, r6, &format!("{p}_keep_left"));
        // denied: no child was born — return its token
        emit_locked_add(a, rt.tokens, -1);
    }
    // the worker's own token covers its pending stack
    a.push_reg(cv);
    a.push_reg(cp);
    a.addi(pending, pending, 1);
    a.bind(format!("{p}_keep_left"));
    a.mv(hi, cv);
    a.j(&format!("{p}_work"));
    a.bind(format!("{p}_leaf"));
    emit_leaf(a);
    a.bne(pending, Reg::ZERO, &format!("{p}_resume"));
    // worker exhausted: release its token and finish
    emit_locked_add(a, rt.tokens, -1);
    a.j(&format!("{p}_finish"));
    a.bind(format!("{p}_resume"));
    a.pop_reg(hi);
    a.pop_reg(lo);
    a.addi(pending, pending, -1);
    a.j(&format!("{p}_work"));
    a.bind(format!("{p}_child"));
    a.mv(lo, cv);
    a.mv(hi, cp);
    a.li(pending, 0);
    let l = Labels::new(format!("{p}_c"));
    emit_stack_alloc(a, rt, &l);
    a.j(&format!("{p}_work"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let l = Labels::new("x");
        assert_ne!(l.fresh("a"), l.fresh("a"));
        assert!(l.fresh("loop").starts_with("x_loop_"));
    }

    #[test]
    fn runtime_layout_is_disjoint() {
        let mut d = DataBuilder::new();
        let rt = init_runtime(&mut d, 1, 4, 256);
        assert!(rt.tokens < rt.pool_head);
        assert!(rt.pool_head < rt.pool_next);
        assert!(rt.pool_next < rt.pool_base);
        assert_eq!(rt.pool_slots, 4);
    }

    #[test]
    fn emitters_produce_assemblable_code() {
        let mut d = DataBuilder::new();
        let rt = init_runtime(&mut d, 1, 4, 256);
        let b = init_barrier(&mut d, 2);
        let l = Labels::new("t");
        let mut a = Asm::new();
        emit_locked_add(&mut a, rt.tokens, 1);
        emit_stack_alloc(&mut a, &rt, &l);
        emit_stack_free(&mut a, &rt);
        emit_barrier_wait(&mut a, &b, &l);
        emit_join_spin(&mut a, &rt, &l);
        a.bind("w_finish");
        a.halt();
        emit_split_range_worker(&mut a, "w", &rt, 4, true, |a| a.nop());
        let text = a.assemble().expect("all emitters assemble");
        assert!(text.len() > 40);
    }
}
