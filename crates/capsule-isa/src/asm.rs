//! Program-builder DSL ("the assembler").
//!
//! [`Asm`] plays the role of the paper's assembly-level post-processor: the
//! workload crates construct worker code with it, including the
//! probe/divide `switch` lowering around `nthr` (Figure 2 of the paper).
//!
//! Labels are bound with [`Asm::bind`] and referenced by name in branch,
//! jump, and `nthr` emitters; [`Asm::assemble`] resolves all fixups.
//!
//! ```
//! use capsule_isa::asm::Asm;
//! use capsule_isa::reg::Reg;
//!
//! let mut a = Asm::new();
//! let (r1, r2) = (Reg(1), Reg(2));
//! a.li(r1, 10);
//! a.li(r2, 0);
//! a.bind("loop");
//! a.add(r2, r2, r1);
//! a.addi(r1, r1, -1);
//! a.bne(r1, Reg::ZERO, "loop");
//! a.out(r2);
//! a.halt();
//! let text = a.assemble()?;
//! assert_eq!(text.len(), 7);
//! # Ok::<(), capsule_isa::asm::AsmError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::instr::{AluOp, BrCond, FAluOp, FCmpOp, Instr};
use crate::reg::{FReg, Reg};

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was bound twice.
    DuplicateLabel(String),
    /// A referenced label was never bound.
    UndefinedLabel(String),
    /// The program exceeds the 2^24-instruction encoding limit.
    TooLarge(usize),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::TooLarge(n) => write!(f, "program too large: {n} instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Maximum instructions in one program (24-bit encoded targets).
pub const MAX_TEXT_LEN: usize = 1 << 24;

/// Incremental program builder with label fixups.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    insns: Vec<Instr>,
    labels: HashMap<String, u32>,
    duplicate: Option<String>,
    fixups: Vec<(usize, String)>,
}

macro_rules! alu3 {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " rd, rs1, rs2`.")]
            pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                self.push(Instr::Alu { op: AluOp::$op, rd, rs1, rs2 });
            }
        )*
    };
}

macro_rules! alui {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " rd, rs1, imm`.")]
            pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i64) {
                self.push(Instr::AluI { op: AluOp::$op, rd, rs1, imm });
            }
        )*
    };
}

macro_rules! branches {
    ($($name:ident => $cond:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " rs1, rs2, label`.")]
            pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: &str) {
                let idx = self.insns.len();
                self.fixups.push((idx, label.to_string()));
                self.push(Instr::Br { cond: BrCond::$cond, rs1, rs2, target: u32::MAX });
            }
        )*
    };
}

macro_rules! falu3 {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " fd, fs1, fs2`.")]
            pub fn $name(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
                self.push(Instr::FAlu { op: FAluOp::$op, fd, fs1, fs2 });
            }
        )*
    };
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.insns.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Binds `label` to the next instruction.
    ///
    /// Duplicates are reported by [`Asm::assemble`].
    pub fn bind(&mut self, label: impl Into<String>) {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label);
        }
    }

    /// Address of a bound label, if already bound.
    pub fn label_addr(&self, label: &str) -> Option<u32> {
        self.labels.get(label).copied()
    }

    /// Appends a pre-built instruction.
    pub fn push(&mut self, i: Instr) {
        self.insns.push(i);
    }

    alu3! {
        add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
        and => And, or => Or, xor => Xor, sll => Sll, srl => Srl,
        sra => Sra, slt => Slt, sltu => Sltu,
    }

    alui! {
        addi => Add, subi => Sub, muli => Mul, divi => Div, remi => Rem,
        andi => And, ori => Or, xori => Xor, slli => Sll, srli => Srl,
        srai => Sra, slti => Slt, sltui => Sltu,
    }

    branches! {
        beq => Eq, bne => Ne, blt => Lt, bge => Ge, bltu => Ltu, bgeu => Geu,
    }

    falu3! {
        fadd => Add, fsub => Sub, fmul => Mul, fdiv => Div, fmin => Min, fmax => Max,
    }

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.push(Instr::Li { rd, imm });
    }

    /// Emits `mv rd, rs` (encoded as `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Emits `ld rd, off(base)`.
    pub fn ld(&mut self, rd: Reg, off: i64, base: Reg) {
        self.push(Instr::Ld { rd, base, off });
    }

    /// Emits `st rs, off(base)`.
    pub fn st(&mut self, rs: Reg, off: i64, base: Reg) {
        self.push(Instr::St { rs, base, off });
    }

    /// Emits `ldb rd, off(base)`.
    pub fn ldb(&mut self, rd: Reg, off: i64, base: Reg) {
        self.push(Instr::Ldb { rd, base, off });
    }

    /// Emits `stb rs, off(base)`.
    pub fn stb(&mut self, rs: Reg, off: i64, base: Reg) {
        self.push(Instr::Stb { rs, base, off });
    }

    /// Emits `fld fd, off(base)`.
    pub fn fld(&mut self, fd: FReg, off: i64, base: Reg) {
        self.push(Instr::FLd { fd, base, off });
    }

    /// Emits `fst fs, off(base)`.
    pub fn fst(&mut self, fs: FReg, off: i64, base: Reg) {
        self.push(Instr::FSt { fs, base, off });
    }

    /// Emits `j label`.
    pub fn j(&mut self, label: &str) {
        let idx = self.insns.len();
        self.fixups.push((idx, label.to_string()));
        self.push(Instr::J { target: u32::MAX });
    }

    /// Emits `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        let idx = self.insns.len();
        self.fixups.push((idx, label.to_string()));
        self.push(Instr::Jal { rd, target: u32::MAX });
    }

    /// Emits `call label` — `jal ra, label`.
    pub fn call(&mut self, label: &str) {
        self.jal(Reg::RA, label);
    }

    /// Emits `jr rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.push(Instr::Jr { rs });
    }

    /// Emits `ret` — `jr ra`.
    pub fn ret(&mut self) {
        self.jr(Reg::RA);
    }

    /// Emits `jalr rd, rs`.
    pub fn jalr(&mut self, rd: Reg, rs: Reg) {
        self.push(Instr::Jalr { rd, rs });
    }

    /// Emits `fli fd, imm`.
    pub fn fli(&mut self, fd: FReg, imm: f64) {
        self.push(Instr::FLi { fd, imm });
    }

    /// Emits an FP comparison `flt|fle|feq rd, fs1, fs2`.
    pub fn fcmp(&mut self, op: FCmpOp, rd: Reg, fs1: FReg, fs2: FReg) {
        self.push(Instr::FCmp { op, rd, fs1, fs2 });
    }

    /// Emits `cvtif fd, rs`.
    pub fn cvtif(&mut self, fd: FReg, rs: Reg) {
        self.push(Instr::CvtIF { fd, rs });
    }

    /// Emits `cvtfi rd, fs`.
    pub fn cvtfi(&mut self, rd: Reg, fs: FReg) {
        self.push(Instr::CvtFI { rd, fs });
    }

    /// Emits `nthr rd, label` — the CAPSULE probe + conditional division.
    pub fn nthr(&mut self, rd: Reg, label: &str) {
        let idx = self.insns.len();
        self.fixups.push((idx, label.to_string()));
        self.push(Instr::Nthr { rd, target: u32::MAX });
    }

    /// Emits `kthr`.
    pub fn kthr(&mut self) {
        self.push(Instr::Kthr);
    }

    /// Emits `mlock rs`.
    pub fn mlock(&mut self, rs: Reg) {
        self.push(Instr::Mlock { rs });
    }

    /// Emits `munlock rs`.
    pub fn munlock(&mut self, rs: Reg) {
        self.push(Instr::Munlock { rs });
    }

    /// Emits `nctx rd`.
    pub fn nctx(&mut self, rd: Reg) {
        self.push(Instr::Nctx { rd });
    }

    /// Emits `tid rd`.
    pub fn tid(&mut self, rd: Reg) {
        self.push(Instr::Tid { rd });
    }

    /// Emits `mark.start id`.
    pub fn mark_start(&mut self, id: u16) {
        self.push(Instr::MarkStart { id });
    }

    /// Emits `mark.end id`.
    pub fn mark_end(&mut self, id: u16) {
        self.push(Instr::MarkEnd { id });
    }

    /// Emits `out rs`.
    pub fn out(&mut self, rs: Reg) {
        self.push(Instr::Out { rs });
    }

    /// Emits `outf fs`.
    pub fn outf(&mut self, fs: FReg) {
        self.push(Instr::OutF { fs });
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.push(Instr::Halt);
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.push(Instr::Nop);
    }

    /// Emits `push rs` — `addi sp, sp, -8; st rs, 0(sp)`.
    pub fn push_reg(&mut self, rs: Reg) {
        self.addi(Reg::SP, Reg::SP, -8);
        self.st(rs, 0, Reg::SP);
    }

    /// Emits `pop rd` — `ld rd, 0(sp); addi sp, sp, 8`.
    pub fn pop_reg(&mut self, rd: Reg) {
        self.ld(rd, 0, Reg::SP);
        self.addi(Reg::SP, Reg::SP, 8);
    }

    /// Resolves all fixups and returns the instruction stream.
    ///
    /// # Errors
    ///
    /// [`AsmError::DuplicateLabel`] if a label was bound twice,
    /// [`AsmError::UndefinedLabel`] if a referenced label is unbound,
    /// [`AsmError::TooLarge`] if the text exceeds [`MAX_TEXT_LEN`].
    pub fn assemble(mut self) -> Result<Vec<Instr>, AsmError> {
        if let Some(l) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(l));
        }
        if self.insns.len() > MAX_TEXT_LEN {
            return Err(AsmError::TooLarge(self.insns.len()));
        }
        for (idx, label) in &self.fixups {
            let target =
                *self.labels.get(label).ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            self.insns[*idx].set_static_target(target);
        }
        Ok(self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.j("end"); // forward
        a.bind("loop");
        a.nop();
        a.bne(Reg(1), Reg(0), "loop"); // backward
        a.bind("end");
        a.halt();
        let text = a.assemble().unwrap();
        assert_eq!(text[0], Instr::J { target: 3 });
        assert_eq!(text[2], Instr::Br { cond: BrCond::Ne, rs1: Reg(1), rs2: Reg(0), target: 1 });
    }

    #[test]
    fn undefined_label_reported() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_reported() {
        let mut a = Asm::new();
        a.bind("x");
        a.nop();
        a.bind("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn nthr_target_resolves() {
        let mut a = Asm::new();
        a.nthr(Reg(5), "child");
        a.halt();
        a.bind("child");
        a.kthr();
        let text = a.assemble().unwrap();
        assert_eq!(text[0], Instr::Nthr { rd: Reg(5), target: 2 });
    }

    #[test]
    fn pseudo_ops_expand() {
        let mut a = Asm::new();
        a.mv(Reg(1), Reg(2));
        a.push_reg(Reg(3));
        a.pop_reg(Reg(4));
        a.call("f");
        a.bind("f");
        a.ret();
        let text = a.assemble().unwrap();
        assert_eq!(text.len(), 7);
        assert_eq!(text[0], Instr::AluI { op: AluOp::Add, rd: Reg(1), rs1: Reg(2), imm: 0 });
        assert_eq!(text[5], Instr::Jal { rd: Reg::RA, target: 6 });
        assert_eq!(text[6], Instr::Jr { rs: Reg::RA });
    }

    #[test]
    fn here_and_len_track_position() {
        let mut a = Asm::new();
        assert!(a.is_empty());
        assert_eq!(a.here(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(AsmError::UndefinedLabel("z".into()).to_string(), "undefined label `z`");
        assert_eq!(AsmError::DuplicateLabel("z".into()).to_string(), "duplicate label `z`");
    }
}
