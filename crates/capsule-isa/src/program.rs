//! Loadable programs: text + initialized data + initial threads.
//!
//! A [`Program`] is what the simulator boots. The data image built by
//! [`DataBuilder`] is loaded at [`DATA_BASE`]; addresses below it trap as
//! null-pointer dereferences. Statically parallelized programs (the paper's
//! standard-SMT baseline) list several [`ThreadSpec`] entries; component
//! programs list exactly one ancestor worker and grow by division.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Instr;
use crate::reg::{FReg, Reg};

/// Base address of the initialized data image (addresses below trap).
pub const DATA_BASE: u64 = 4096;

/// Initial state of one loader-created thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadSpec {
    /// Entry point (instruction index).
    pub pc: u32,
    /// Initial integer register values.
    pub int_regs: Vec<(Reg, i64)>,
    /// Initial FP register values.
    pub fp_regs: Vec<(FReg, f64)>,
}

impl ThreadSpec {
    /// A thread starting at `pc` with an empty register file.
    pub fn at(pc: u32) -> Self {
        ThreadSpec { pc, ..Default::default() }
    }

    /// Adds an initial integer register value (builder style).
    pub fn with_reg(mut self, r: Reg, v: i64) -> Self {
        self.int_regs.push((r, v));
        self
    }

    /// Adds an initial FP register value (builder style).
    pub fn with_freg(mut self, f: FReg, v: f64) -> Self {
        self.fp_regs.push((f, v));
        self
    }
}

/// Validation errors for [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The text section is empty.
    EmptyText,
    /// No initial thread was specified.
    NoThreads,
    /// A control-transfer target points outside the text section.
    TargetOutOfRange {
        /// Offending instruction index.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A thread entry point lies outside the text section.
    EntryOutOfRange {
        /// Thread index in [`Program::threads`].
        thread: usize,
        /// The out-of-range entry pc.
        pc: u32,
    },
    /// The data image does not fit under `mem_size`.
    DataTooLarge {
        /// Required bytes (base + data length).
        required: usize,
        /// Configured memory size.
        mem_size: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::EmptyText => write!(f, "program has no instructions"),
            ProgramError::NoThreads => write!(f, "program has no initial thread"),
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets {target}, outside the text section")
            }
            ProgramError::EntryOutOfRange { thread, pc } => {
                write!(f, "thread {thread} entry pc {pc} outside the text section")
            }
            ProgramError::DataTooLarge { required, mem_size } => {
                write!(f, "data image needs {required} bytes but memory is {mem_size}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete loadable program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Instruction stream.
    pub text: Vec<Instr>,
    /// Initialized data, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Total data-memory size in bytes (≥ `DATA_BASE + data.len()`).
    pub mem_size: usize,
    /// Loader-created threads (at least one).
    pub threads: Vec<ThreadSpec>,
    /// Named data addresses, for diagnostics and result extraction.
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Builds a program, sizing memory to the data image plus `heap_bytes`
    /// of headroom.
    pub fn new(text: Vec<Instr>, data: DataImage, heap_bytes: usize) -> Self {
        let mem_size = DATA_BASE as usize + data.bytes.len() + heap_bytes;
        Program { text, data: data.bytes, mem_size, threads: Vec::new(), symbols: data.symbols }
    }

    /// Adds a loader thread (builder style).
    pub fn with_thread(mut self, t: ThreadSpec) -> Self {
        self.threads.push(t);
        self
    }

    /// Address of a data symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is unknown; symbols are fixed at build time so
    /// a miss is a programming error in the workload builder.
    pub fn symbol(&self, name: &str) -> u64 {
        *self.symbols.get(name).unwrap_or_else(|| panic!("unknown data symbol `{name}`"))
    }

    /// Structural validation (targets, entries, memory bounds).
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.text.is_empty() {
            return Err(ProgramError::EmptyText);
        }
        if self.threads.is_empty() {
            return Err(ProgramError::NoThreads);
        }
        let len = self.text.len() as u32;
        for (at, i) in self.text.iter().enumerate() {
            if let Some(target) = i.static_target() {
                if target >= len {
                    return Err(ProgramError::TargetOutOfRange { at, target });
                }
            }
        }
        for (thread, t) in self.threads.iter().enumerate() {
            if t.pc >= len {
                return Err(ProgramError::EntryOutOfRange { thread, pc: t.pc });
            }
        }
        let required = DATA_BASE as usize + self.data.len();
        if required > self.mem_size {
            return Err(ProgramError::DataTooLarge { required, mem_size: self.mem_size });
        }
        Ok(())
    }
}

/// Finished data image (bytes + symbol table) from a [`DataBuilder`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataImage {
    /// Raw bytes, loaded at [`DATA_BASE`].
    pub bytes: Vec<u8>,
    /// Symbol name → absolute address.
    pub symbols: BTreeMap<String, u64>,
}

/// Incremental layout of the initialized data section.
///
/// All `word`-level helpers 8-align automatically; addresses returned are
/// absolute (already offset by [`DATA_BASE`]).
#[derive(Debug, Clone, Default)]
pub struct DataBuilder {
    bytes: Vec<u8>,
    symbols: BTreeMap<String, u64>,
}

impl DataBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current absolute address (next byte to be laid out).
    pub fn here(&self) -> u64 {
        DATA_BASE + self.bytes.len() as u64
    }

    /// Pads to an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        assert!(n.is_power_of_two(), "alignment must be a power of two");
        while !(self.here() as usize).is_multiple_of(n) {
            self.bytes.push(0);
        }
    }

    /// Names the current address.
    pub fn label(&mut self, name: impl Into<String>) -> u64 {
        let addr = self.here();
        self.symbols.insert(name.into(), addr);
        addr
    }

    /// Appends one 64-bit word; returns its address.
    pub fn word(&mut self, v: i64) -> u64 {
        self.align(8);
        let addr = self.here();
        self.bytes.extend_from_slice(&v.to_le_bytes());
        addr
    }

    /// Appends a slice of 64-bit words; returns the start address.
    pub fn words(&mut self, vs: &[i64]) -> u64 {
        self.align(8);
        let addr = self.here();
        for v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Appends a slice of f64 values; returns the start address.
    pub fn f64s(&mut self, vs: &[f64]) -> u64 {
        self.align(8);
        let addr = self.here();
        for v in vs {
            self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Appends raw bytes; returns the start address.
    pub fn raw(&mut self, bs: &[u8]) -> u64 {
        let addr = self.here();
        self.bytes.extend_from_slice(bs);
        addr
    }

    /// Reserves `n` zero bytes; returns the start address.
    pub fn zeros(&mut self, n: usize) -> u64 {
        let addr = self.here();
        self.bytes.resize(self.bytes.len() + n, 0);
        addr
    }

    /// Reserves a downward-growing stack of `bytes` bytes and returns its
    /// initial (top) stack-pointer value, 16-aligned.
    pub fn stack(&mut self, bytes: usize) -> u64 {
        self.align(16);
        let base = self.zeros(bytes);
        let top = base + bytes as u64;
        top & !15
    }

    /// Address of a previously placed symbol.
    pub fn addr_of(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Bytes laid out so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been laid out.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finishes the image.
    pub fn build(self) -> DataImage {
        DataImage { bytes: self.bytes, symbols: self.symbols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn data_layout_and_symbols() {
        let mut d = DataBuilder::new();
        assert!(d.is_empty());
        let a = d.label("arr");
        let w = d.words(&[1, 2, 3]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(w, DATA_BASE);
        d.raw(&[0xff]);
        let x = d.word(7); // must realign to 8
        assert_eq!(x % 8, 0);
        let img = d.build();
        assert_eq!(img.symbols["arr"], DATA_BASE);
        assert_eq!(&img.bytes[0..8], &1i64.to_le_bytes());
    }

    #[test]
    fn stack_is_aligned_and_above_base() {
        let mut d = DataBuilder::new();
        d.raw(&[1, 2, 3]);
        let top = d.stack(1024);
        assert_eq!(top % 16, 0);
        assert!(top >= DATA_BASE + 1024);
    }

    #[test]
    fn f64_layout_roundtrips() {
        let mut d = DataBuilder::new();
        let addr = d.f64s(&[1.5, -2.25]);
        let img = d.build();
        let off = (addr - DATA_BASE) as usize;
        let bits = u64::from_le_bytes(img.bytes[off..off + 8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 1.5);
    }

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        a.li(Reg(1), 42);
        a.out(Reg(1));
        a.halt();
        let mut d = DataBuilder::new();
        d.label("x");
        d.word(9);
        Program::new(a.assemble().unwrap(), d.build(), 4096)
            .with_thread(ThreadSpec::at(0).with_reg(Reg::SP, 8192))
    }

    #[test]
    fn program_validates() {
        tiny_program().validate().unwrap();
    }

    #[test]
    fn program_symbol_lookup() {
        assert_eq!(tiny_program().symbol("x"), DATA_BASE);
    }

    #[test]
    #[should_panic(expected = "unknown data symbol")]
    fn program_symbol_missing_panics() {
        tiny_program().symbol("nope");
    }

    #[test]
    fn validation_catches_errors() {
        let mut p = tiny_program();
        p.threads.clear();
        assert_eq!(p.validate(), Err(ProgramError::NoThreads));

        let mut p = tiny_program();
        p.text.clear();
        assert_eq!(p.validate(), Err(ProgramError::EmptyText));

        let mut p = tiny_program();
        p.threads[0].pc = 99;
        assert!(matches!(p.validate(), Err(ProgramError::EntryOutOfRange { .. })));

        let mut p = tiny_program();
        p.text.push(Instr::J { target: 1000 });
        assert!(matches!(p.validate(), Err(ProgramError::TargetOutOfRange { .. })));

        let mut p = tiny_program();
        p.mem_size = 16;
        assert!(matches!(p.validate(), Err(ProgramError::DataTooLarge { .. })));
    }

    #[test]
    fn thread_spec_builders() {
        let t = ThreadSpec::at(5).with_reg(Reg(1), 10).with_freg(FReg(2), 0.5);
        assert_eq!(t.pc, 5);
        assert_eq!(t.int_regs, vec![(Reg(1), 10)]);
        assert_eq!(t.fp_regs, vec![(FReg(2), 0.5)]);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ProgramError> = vec![
            ProgramError::EmptyText,
            ProgramError::NoThreads,
            ProgramError::TargetOutOfRange { at: 1, target: 2 },
            ProgramError::EntryOutOfRange { thread: 0, pc: 3 },
            ProgramError::DataTooLarge { required: 10, mem_size: 5 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
