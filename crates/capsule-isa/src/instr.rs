//! The CAP64 instruction set.
//!
//! CAP64 is a 64-bit load/store RISC ISA with the CAPSULE extensions of the
//! paper:
//!
//! - [`Instr::Nthr`] — *New THRead*: probe + conditional division. The
//!   hardware may grant (writing 0 to `rd` in the parent and 1 in the
//!   child, which starts at `target` with a copy of the registers) or deny
//!   (writing −1 and falling through), exactly the `switch` lowering of
//!   Figure 2 of the paper.
//! - [`Instr::Kthr`] — *Kill THRead*: worker death; frees the context.
//! - [`Instr::Mlock`]/[`Instr::Munlock`] — fast lock table on a base
//!   address.
//! - [`Instr::MarkStart`]/[`Instr::MarkEnd`] — section instrumentation used
//!   to measure componentized-section time (Table 2 / Figure 8).
//!
//! Branch/jump targets are absolute instruction indices (the program
//! counter counts instructions, not bytes; the I-cache charges
//! [`INSTR_BYTES`] bytes per instruction so that a cache line holds 8
//! instructions as in the paper).

use std::fmt;

use crate::reg::{FReg, Reg};

/// Bytes charged per instruction for I-cache indexing (64-byte lines hold
/// 8 instructions, the paper's fetch granularity).
pub const INSTR_BYTES: u64 = 8;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
}

impl AluOp {
    /// All operations, for property tests and the assembler tables.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Mnemonic root (`add`, `sub`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    /// Applies the operation with CAP64 semantics (wrapping arithmetic,
    /// shift amounts masked to 6 bits, division by zero yields −1/0 like
    /// RISC-V rather than trapping).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    -1
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => (a < b) as i64,
            AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
        }
    }

    /// Whether the op uses the integer multiply/divide unit.
    pub fn is_long(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FAluOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FAluOp {
    /// All operations.
    pub const ALL: [FAluOp; 6] =
        [FAluOp::Add, FAluOp::Sub, FAluOp::Mul, FAluOp::Div, FAluOp::Min, FAluOp::Max];

    /// Mnemonic root (printed as `fadd`, `fsub`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FAluOp::Add => "fadd",
            FAluOp::Sub => "fsub",
            FAluOp::Mul => "fmul",
            FAluOp::Div => "fdiv",
            FAluOp::Min => "fmin",
            FAluOp::Max => "fmax",
        }
    }

    /// Applies the operation.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            FAluOp::Add => a + b,
            FAluOp::Sub => a - b,
            FAluOp::Mul => a * b,
            FAluOp::Div => a / b,
            FAluOp::Min => a.min(b),
            FAluOp::Max => a.max(b),
        }
    }

    /// Whether the op uses the FP multiply/divide unit.
    pub fn is_long(self) -> bool {
        matches!(self, FAluOp::Mul | FAluOp::Div)
    }
}

/// Floating-point comparisons (result written to an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FCmpOp {
    Lt,
    Le,
    Eq,
}

impl FCmpOp {
    /// All comparisons.
    pub const ALL: [FCmpOp; 3] = [FCmpOp::Lt, FCmpOp::Le, FCmpOp::Eq];

    /// Mnemonic (`flt`, `fle`, `feq`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::Lt => "flt",
            FCmpOp::Le => "fle",
            FCmpOp::Eq => "feq",
        }
    }

    /// Applies the comparison.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            FCmpOp::Lt => a < b,
            FCmpOp::Le => a <= b,
            FCmpOp::Eq => a == b,
        }
    }
}

/// Conditional-branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BrCond {
    /// All conditions.
    pub const ALL: [BrCond; 6] =
        [BrCond::Eq, BrCond::Ne, BrCond::Lt, BrCond::Ge, BrCond::Ltu, BrCond::Geu];

    /// Mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eq => "beq",
            BrCond::Ne => "bne",
            BrCond::Lt => "blt",
            BrCond::Ge => "bge",
            BrCond::Ltu => "bltu",
            BrCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => a < b,
            BrCond::Ge => a >= b,
            BrCond::Ltu => (a as u64) < (b as u64),
            BrCond::Geu => (a as u64) >= (b as u64),
        }
    }
}

/// Functional-unit classes used by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU (1 cycle).
    IntAlu,
    /// Integer multiply/divide.
    IntMult,
    /// FP add/compare/convert.
    FpAlu,
    /// FP multiply/divide.
    FpMult,
    /// Load/store address+access (uses an integer ALU port for AGEN, then
    /// the cache).
    Mem,
    /// No functional unit (marks, halt, nop, thread control).
    None,
}

/// A CAP64 instruction.
///
/// Branch and `nthr` targets are absolute instruction indices fixed up by
/// the assembler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Integer register-register ALU.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Integer register-immediate ALU.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Load immediate.
    Li {
        /// Destination.
        rd: Reg,
        /// Value.
        imm: i64,
    },
    /// Load 64-bit word: `rd = mem[rs1 + off]`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Store 64-bit word: `mem[base + off] = rs`.
    St {
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Load byte (zero-extended).
    Ldb {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Store low byte.
    Stb {
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Load 64-bit float.
    FLd {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Store 64-bit float.
    FSt {
        /// Value source.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Conditional branch to `target` when `cond(rs1, rs2)`.
    Br {
        /// Condition.
        cond: BrCond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional jump.
    J {
        /// Absolute instruction index.
        target: u32,
    },
    /// Jump and link: `rd = pc + 1; pc = target`.
    Jal {
        /// Link register.
        rd: Reg,
        /// Absolute instruction index.
        target: u32,
    },
    /// Indirect jump: `pc = rs`.
    Jr {
        /// Target address register (instruction index).
        rs: Reg,
    },
    /// Indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target address register.
        rs: Reg,
    },
    /// FP register-register ALU.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// FP load immediate.
    FLi {
        /// Destination.
        fd: FReg,
        /// Value.
        imm: f64,
    },
    /// FP comparison into an integer register (1 if true).
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// Integer destination.
        rd: Reg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Convert integer to float: `fd = rs as f64`.
    CvtIF {
        /// Destination.
        fd: FReg,
        /// Source.
        rs: Reg,
    },
    /// Convert float to integer (truncating): `rd = fs as i64`.
    CvtFI {
        /// Destination.
        rd: Reg,
        /// Source.
        fs: FReg,
    },
    /// CAPSULE probe + conditional division (paper §3.1).
    ///
    /// Granted: parent gets `rd = 0` and falls through; the child receives
    /// a register copy, `rd = 1`, and resumes at `target`.
    /// Denied: `rd = -1`, fall through (the instruction behaves as a nop
    /// plus the probe result).
    Nthr {
        /// Probe-result destination.
        rd: Reg,
        /// Child entry point (absolute instruction index).
        target: u32,
    },
    /// CAPSULE worker death; frees the hardware context at commit.
    Kthr,
    /// Acquire the fast lock on the base address in `rs` (paper §3.1).
    Mlock {
        /// Register holding the locked address.
        rs: Reg,
    },
    /// Release the fast lock on the base address in `rs`.
    Munlock {
        /// Register holding the locked address.
        rs: Reg,
    },
    /// Probe: number of currently free hardware contexts.
    Nctx {
        /// Destination.
        rd: Reg,
    },
    /// Current worker id.
    Tid {
        /// Destination.
        rd: Reg,
    },
    /// Enter instrumentation section `id`.
    MarkStart {
        /// Section id.
        id: u16,
    },
    /// Leave instrumentation section `id`.
    MarkEnd {
        /// Section id.
        id: u16,
    },
    /// Append the integer in `rs` to the run's output channel.
    Out {
        /// Source.
        rs: Reg,
    },
    /// Append the float in `fs` to the run's output channel.
    OutF {
        /// Source.
        fs: FReg,
    },
    /// Stop the machine (all threads) and end the run.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Functional-unit class for the timing model.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::Alu { op, .. } | Instr::AluI { op, .. } => {
                if op.is_long() {
                    FuClass::IntMult
                } else {
                    FuClass::IntAlu
                }
            }
            Instr::Li { .. } | Instr::Tid { .. } | Instr::Nctx { .. } => FuClass::IntAlu,
            Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::Ldb { .. }
            | Instr::Stb { .. }
            | Instr::FLd { .. }
            | Instr::FSt { .. } => FuClass::Mem,
            Instr::Br { .. }
            | Instr::J { .. }
            | Instr::Jal { .. }
            | Instr::Jr { .. }
            | Instr::Jalr { .. } => FuClass::IntAlu,
            Instr::FAlu { op, .. } => {
                if op.is_long() {
                    FuClass::FpMult
                } else {
                    FuClass::FpAlu
                }
            }
            Instr::FLi { .. } | Instr::FCmp { .. } | Instr::CvtIF { .. } | Instr::CvtFI { .. } => {
                FuClass::FpAlu
            }
            Instr::Nthr { .. }
            | Instr::Kthr
            | Instr::Mlock { .. }
            | Instr::Munlock { .. }
            | Instr::MarkStart { .. }
            | Instr::MarkEnd { .. }
            | Instr::Out { .. }
            | Instr::OutF { .. }
            | Instr::Halt
            | Instr::Nop => FuClass::None,
        }
    }

    /// Execution latency in cycles, excluding memory (loads add cache
    /// latency on top of address generation).
    pub fn latency(&self) -> u64 {
        match self {
            Instr::Alu { op, .. } | Instr::AluI { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Div | AluOp::Rem => 20,
                _ => 1,
            },
            Instr::FAlu { op, .. } => match op {
                FAluOp::Mul => 4,
                FAluOp::Div => 12,
                _ => 2,
            },
            Instr::FCmp { .. } | Instr::CvtIF { .. } | Instr::CvtFI { .. } => 2,
            _ => 1,
        }
    }

    /// True for control-transfer instructions (branches and jumps; `nthr`
    /// is *not* one for the fetch path — the parent always falls through).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Br { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
        )
    }

    /// True for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Br { .. })
    }

    /// True for memory instructions.
    pub fn is_mem(&self) -> bool {
        self.fu_class() == FuClass::Mem
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Ld { .. } | Instr::Ldb { .. } | Instr::FLd { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::St { .. } | Instr::Stb { .. } | Instr::FSt { .. })
    }

    /// Integer destination register, if any (excluding `r0` writes, which
    /// are architectural no-ops but still reported here).
    pub fn dest_int(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluI { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Ld { rd, .. }
            | Instr::Ldb { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::FCmp { rd, .. }
            | Instr::CvtFI { rd, .. }
            | Instr::Nthr { rd, .. }
            | Instr::Nctx { rd }
            | Instr::Tid { rd } => Some(rd),
            _ => None,
        }
    }

    /// FP destination register, if any.
    pub fn dest_fp(&self) -> Option<FReg> {
        match *self {
            Instr::FLd { fd, .. }
            | Instr::FAlu { fd, .. }
            | Instr::FLi { fd, .. }
            | Instr::CvtIF { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Integer source registers (up to 2 used slots).
    pub fn sources_int(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::AluI { rs1, .. } => [Some(rs1), None],
            Instr::Ld { base, .. } | Instr::Ldb { base, .. } | Instr::FLd { base, .. } => {
                [Some(base), None]
            }
            Instr::St { rs, base, .. } | Instr::Stb { rs, base, .. } => [Some(rs), Some(base)],
            Instr::FSt { base, .. } => [Some(base), None],
            Instr::Br { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Jr { rs } | Instr::Jalr { rs, .. } => [Some(rs), None],
            Instr::CvtIF { rs, .. } => [Some(rs), None],
            Instr::Mlock { rs } | Instr::Munlock { rs } | Instr::Out { rs } => [Some(rs), None],
            _ => [None, None],
        }
    }

    /// FP source registers (up to 2 used slots).
    pub fn sources_fp(&self) -> [Option<FReg>; 2] {
        match *self {
            Instr::FAlu { fs1, fs2, .. } | Instr::FCmp { fs1, fs2, .. } => [Some(fs1), Some(fs2)],
            Instr::FSt { fs, .. } | Instr::OutF { fs } => [Some(fs), None],
            Instr::CvtFI { fs, .. } => [Some(fs), None],
            _ => [None, None],
        }
    }

    /// Statically-known branch/jump/division target, if any.
    pub fn static_target(&self) -> Option<u32> {
        match *self {
            Instr::Br { target, .. }
            | Instr::J { target }
            | Instr::Jal { target, .. }
            | Instr::Nthr { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the statically-known target (assembler fixups).
    pub(crate) fn set_static_target(&mut self, new: u32) {
        match self {
            Instr::Br { target, .. }
            | Instr::J { target }
            | Instr::Jal { target, .. }
            | Instr::Nthr { target, .. } => *target = new,
            _ => panic!("instruction has no static target: {self:?}"),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::AluI { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Ld { rd, base, off } => write!(f, "ld {rd}, {off}({base})"),
            Instr::St { rs, base, off } => write!(f, "st {rs}, {off}({base})"),
            Instr::Ldb { rd, base, off } => write!(f, "ldb {rd}, {off}({base})"),
            Instr::Stb { rs, base, off } => write!(f, "stb {rs}, {off}({base})"),
            Instr::FLd { fd, base, off } => write!(f, "fld {fd}, {off}({base})"),
            Instr::FSt { fs, base, off } => write!(f, "fst {fs}, {off}({base})"),
            Instr::Br { cond, rs1, rs2, target } => {
                write!(f, "{} {rs1}, {rs2}, L{target}", cond.mnemonic())
            }
            Instr::J { target } => write!(f, "j L{target}"),
            Instr::Jal { rd, target } => write!(f, "jal {rd}, L{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Instr::FAlu { op, fd, fs1, fs2 } => {
                write!(f, "{} {fd}, {fs1}, {fs2}", op.mnemonic())
            }
            Instr::FLi { fd, imm } => write!(f, "fli {fd}, {imm:?}"),
            Instr::FCmp { op, rd, fs1, fs2 } => {
                write!(f, "{} {rd}, {fs1}, {fs2}", op.mnemonic())
            }
            Instr::CvtIF { fd, rs } => write!(f, "cvtif {fd}, {rs}"),
            Instr::CvtFI { rd, fs } => write!(f, "cvtfi {rd}, {fs}"),
            Instr::Nthr { rd, target } => write!(f, "nthr {rd}, L{target}"),
            Instr::Kthr => write!(f, "kthr"),
            Instr::Mlock { rs } => write!(f, "mlock {rs}"),
            Instr::Munlock { rs } => write!(f, "munlock {rs}"),
            Instr::Nctx { rd } => write!(f, "nctx {rd}"),
            Instr::Tid { rd } => write!(f, "tid {rd}"),
            Instr::MarkStart { id } => write!(f, "mark.start {id}"),
            Instr::MarkEnd { id } => write!(f, "mark.end {id}"),
            Instr::Out { rs } => write!(f, "out {rs}"),
            Instr::OutF { fs } => write!(f, "outf {fs}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(-4, 3), -12);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), -1);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Rem.apply(7, 3), 1);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 60), 15);
        assert_eq!(AluOp::Sra.apply(-16, 2), -4);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1, 0), 0); // -1 is u64::MAX
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wrapping
    }

    #[test]
    fn shift_amounts_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.holds(4, 4));
        assert!(BrCond::Ne.holds(4, 5));
        assert!(BrCond::Lt.holds(-1, 0));
        assert!(!BrCond::Ltu.holds(-1, 0));
        assert!(BrCond::Ge.holds(0, 0));
        assert!(BrCond::Geu.holds(-1, 1));
    }

    #[test]
    fn fcmp_semantics() {
        assert!(FCmpOp::Lt.apply(1.0, 2.0));
        assert!(FCmpOp::Le.apply(2.0, 2.0));
        assert!(FCmpOp::Eq.apply(2.0, 2.0));
        assert!(!FCmpOp::Lt.apply(f64::NAN, 0.0));
    }

    #[test]
    fn fu_classification() {
        let r = Reg(1);
        let f1 = FReg(1);
        assert_eq!(
            Instr::Alu { op: AluOp::Add, rd: r, rs1: r, rs2: r }.fu_class(),
            FuClass::IntAlu
        );
        assert_eq!(
            Instr::Alu { op: AluOp::Mul, rd: r, rs1: r, rs2: r }.fu_class(),
            FuClass::IntMult
        );
        assert_eq!(Instr::Ld { rd: r, base: r, off: 0 }.fu_class(), FuClass::Mem);
        assert_eq!(
            Instr::FAlu { op: FAluOp::Div, fd: f1, fs1: f1, fs2: f1 }.fu_class(),
            FuClass::FpMult
        );
        assert_eq!(Instr::Kthr.fu_class(), FuClass::None);
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Alu { op: AluOp::Add, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) };
        assert_eq!(i.dest_int(), Some(Reg(1)));
        assert_eq!(i.sources_int(), [Some(Reg(2)), Some(Reg(3))]);

        let s = Instr::St { rs: Reg(4), base: Reg(5), off: 8 };
        assert_eq!(s.dest_int(), None);
        assert_eq!(s.sources_int(), [Some(Reg(4)), Some(Reg(5))]);
        assert!(s.is_store() && s.is_mem() && !s.is_load());

        let n = Instr::Nthr { rd: Reg(6), target: 42 };
        assert_eq!(n.dest_int(), Some(Reg(6)));
        assert_eq!(n.static_target(), Some(42));
        assert!(!n.is_control());
    }

    #[test]
    fn fp_dest_and_sources() {
        let i = Instr::FAlu { op: FAluOp::Add, fd: FReg(1), fs1: FReg(2), fs2: FReg(3) };
        assert_eq!(i.dest_fp(), Some(FReg(1)));
        assert_eq!(i.sources_fp(), [Some(FReg(2)), Some(FReg(3))]);
        let c = Instr::CvtIF { fd: FReg(0), rs: Reg(7) };
        assert_eq!(c.dest_fp(), Some(FReg(0)));
        assert_eq!(c.sources_int(), [Some(Reg(7)), None]);
    }

    #[test]
    fn display_round_trips_visually() {
        let r1 = Reg(1);
        let cases = [
            (Instr::Alu { op: AluOp::Add, rd: r1, rs1: Reg(2), rs2: Reg(3) }, "add r1, r2, r3"),
            (Instr::AluI { op: AluOp::Add, rd: r1, rs1: Reg(2), imm: -4 }, "addi r1, r2, -4"),
            (Instr::Ld { rd: r1, base: Reg::SP, off: 16 }, "ld r1, 16(sp)"),
            (Instr::Br { cond: BrCond::Eq, rs1: r1, rs2: Reg::ZERO, target: 7 }, "beq r1, r0, L7"),
            (Instr::Nthr { rd: r1, target: 3 }, "nthr r1, L3"),
            (Instr::MarkStart { id: 2 }, "mark.start 2"),
            (Instr::Halt, "halt"),
        ];
        for (i, s) in cases {
            assert_eq!(i.to_string(), s);
        }
    }

    #[test]
    fn set_static_target_rewrites() {
        let mut i = Instr::J { target: 0 };
        i.set_static_target(9);
        assert_eq!(i.static_target(), Some(9));
    }

    #[test]
    #[should_panic(expected = "no static target")]
    fn set_static_target_panics_on_non_control() {
        let mut i = Instr::Nop;
        i.set_static_target(1);
    }
}
