//! Textual assembly: parser and disassembler.
//!
//! The text format is the one produced by [`Instr`]'s `Display` impl, one
//! instruction per line, with `name:` labels and `#`/`;` comments:
//!
//! ```text
//! # sum 1..10
//!     li r1, 10
//!     li r2, 0
//! loop:
//!     add r2, r2, r1
//!     addi r1, r1, -1
//!     bne r1, r0, loop
//!     out r2
//!     halt
//! ```
//!
//! [`parse`] turns a listing into instructions; [`disassemble`] renders
//! instructions back into a listing (labels named `L<index>`), such that
//! `parse(disassemble(p)) == p`.

use std::collections::BTreeSet;
use std::fmt;

use crate::asm::{Asm, AsmError};
use crate::instr::{AluOp, BrCond, FAluOp, FCmpOp, Instr};
use crate::reg::{FReg, Reg};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError { line: 0, msg: e.to_string() }
    }
}

fn parse_reg(tok: &str) -> Result<Reg, String> {
    match tok {
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        "gp" => return Ok(Reg::GP),
        "zero" => return Ok(Reg::ZERO),
        _ => {}
    }
    let n: u8 = tok
        .strip_prefix('r')
        .ok_or_else(|| format!("expected integer register, got `{tok}`"))?
        .parse()
        .map_err(|_| format!("bad register `{tok}`"))?;
    if (n as usize) < Reg::COUNT {
        Ok(Reg(n))
    } else {
        Err(format!("register out of range `{tok}`"))
    }
}

fn parse_freg(tok: &str) -> Result<FReg, String> {
    let n: u8 = tok
        .strip_prefix('f')
        .ok_or_else(|| format!("expected fp register, got `{tok}`"))?
        .parse()
        .map_err(|_| format!("bad fp register `{tok}`"))?;
    if (n as usize) < FReg::COUNT {
        Ok(FReg(n))
    } else {
        Err(format!("fp register out of range `{tok}`"))
    }
}

fn parse_imm(tok: &str) -> Result<i64, String> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| format!("bad immediate `{tok}`"))?;
    Ok(if neg { -v } else { v })
}

/// Memory operand `off(base)`.
fn parse_mem(tok: &str) -> Result<(i64, Reg), String> {
    let open = tok.find('(').ok_or_else(|| format!("expected off(base), got `{tok}`"))?;
    let close = tok.rfind(')').ok_or_else(|| format!("missing `)` in `{tok}`"))?;
    let off_str = &tok[..open];
    let off = if off_str.is_empty() { 0 } else { parse_imm(off_str)? };
    let base = parse_reg(&tok[open + 1..close])?;
    Ok((off, base))
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

/// Parses a listing into an instruction stream.
///
/// # Errors
///
/// Returns the first syntax error with its line number, or a label
/// resolution error (line 0) from the underlying assembler.
pub fn parse(src: &str) -> Result<Vec<Instr>, ParseError> {
    let mut a = Asm::new();
    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        if let Some(p) = line.find(['#', ';']) {
            line = &line[..p];
        }
        let mut line = line.trim();
        // Labels (possibly several on one line).
        while let Some(colon) = line.find(':') {
            let label = line[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            a.bind(label);
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let (mn, rest) = match line.find(char::is_whitespace) {
            Some(p) => (&line[..p], line[p..].trim()),
            None => (line, ""),
        };
        let ops = split_operands(rest);
        parse_one(&mut a, mn, &ops).map_err(|msg| ParseError { line: line_no, msg })?;
    }
    a.assemble().map_err(ParseError::from)
}

fn parse_one(a: &mut Asm, mn: &str, ops: &[String]) -> Result<(), String> {
    let argc = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mn}` expects {n} operands, got {}", ops.len()))
        }
    };

    // Integer ALU register and immediate forms.
    for op in AluOp::ALL {
        if mn == op.mnemonic() {
            argc(3)?;
            let (rd, rs1, rs2) = (parse_reg(&ops[0])?, parse_reg(&ops[1])?, parse_reg(&ops[2])?);
            a.push(Instr::Alu { op, rd, rs1, rs2 });
            return Ok(());
        }
        if mn == format!("{}i", op.mnemonic()) {
            argc(3)?;
            let (rd, rs1) = (parse_reg(&ops[0])?, parse_reg(&ops[1])?);
            let imm = parse_imm(&ops[2])?;
            a.push(Instr::AluI { op, rd, rs1, imm });
            return Ok(());
        }
    }
    for op in FAluOp::ALL {
        if mn == op.mnemonic() {
            argc(3)?;
            let (fd, fs1, fs2) = (parse_freg(&ops[0])?, parse_freg(&ops[1])?, parse_freg(&ops[2])?);
            a.push(Instr::FAlu { op, fd, fs1, fs2 });
            return Ok(());
        }
    }
    for op in FCmpOp::ALL {
        if mn == op.mnemonic() {
            argc(3)?;
            let rd = parse_reg(&ops[0])?;
            let (fs1, fs2) = (parse_freg(&ops[1])?, parse_freg(&ops[2])?);
            a.push(Instr::FCmp { op, rd, fs1, fs2 });
            return Ok(());
        }
    }
    for cond in BrCond::ALL {
        if mn == cond.mnemonic() {
            argc(3)?;
            let (rs1, rs2) = (parse_reg(&ops[0])?, parse_reg(&ops[1])?);
            emit_branch(a, cond, rs1, rs2, &ops[2]);
            return Ok(());
        }
    }

    match mn {
        "li" => {
            argc(2)?;
            let rd = parse_reg(&ops[0])?;
            a.li(rd, parse_imm(&ops[1])?);
        }
        "mv" => {
            argc(2)?;
            a.mv(parse_reg(&ops[0])?, parse_reg(&ops[1])?);
        }
        "fli" => {
            argc(2)?;
            let fd = parse_freg(&ops[0])?;
            let imm: f64 = ops[1].parse().map_err(|_| format!("bad float `{}`", ops[1]))?;
            a.fli(fd, imm);
        }
        "ld" | "ldb" => {
            argc(2)?;
            let rd = parse_reg(&ops[0])?;
            let (off, base) = parse_mem(&ops[1])?;
            a.push(if mn == "ld" {
                Instr::Ld { rd, base, off }
            } else {
                Instr::Ldb { rd, base, off }
            });
        }
        "st" | "stb" => {
            argc(2)?;
            let rs = parse_reg(&ops[0])?;
            let (off, base) = parse_mem(&ops[1])?;
            a.push(if mn == "st" {
                Instr::St { rs, base, off }
            } else {
                Instr::Stb { rs, base, off }
            });
        }
        "fld" => {
            argc(2)?;
            let fd = parse_freg(&ops[0])?;
            let (off, base) = parse_mem(&ops[1])?;
            a.push(Instr::FLd { fd, base, off });
        }
        "fst" => {
            argc(2)?;
            let fs = parse_freg(&ops[0])?;
            let (off, base) = parse_mem(&ops[1])?;
            a.push(Instr::FSt { fs, base, off });
        }
        "j" => {
            argc(1)?;
            a.j(&ops[0]);
        }
        "jal" => {
            argc(2)?;
            let rd = parse_reg(&ops[0])?;
            a.jal(rd, &ops[1]);
        }
        "call" => {
            argc(1)?;
            a.call(&ops[0]);
        }
        "jr" => {
            argc(1)?;
            a.jr(parse_reg(&ops[0])?);
        }
        "ret" => {
            argc(0)?;
            a.ret();
        }
        "jalr" => {
            argc(2)?;
            a.jalr(parse_reg(&ops[0])?, parse_reg(&ops[1])?);
        }
        "cvtif" => {
            argc(2)?;
            a.cvtif(parse_freg(&ops[0])?, parse_reg(&ops[1])?);
        }
        "cvtfi" => {
            argc(2)?;
            a.cvtfi(parse_reg(&ops[0])?, parse_freg(&ops[1])?);
        }
        "nthr" => {
            argc(2)?;
            let rd = parse_reg(&ops[0])?;
            a.nthr(rd, &ops[1]);
        }
        "kthr" => {
            argc(0)?;
            a.kthr();
        }
        "mlock" => {
            argc(1)?;
            a.mlock(parse_reg(&ops[0])?);
        }
        "munlock" => {
            argc(1)?;
            a.munlock(parse_reg(&ops[0])?);
        }
        "nctx" => {
            argc(1)?;
            a.nctx(parse_reg(&ops[0])?);
        }
        "tid" => {
            argc(1)?;
            a.tid(parse_reg(&ops[0])?);
        }
        "mark.start" => {
            argc(1)?;
            let id: u16 = ops[0].parse().map_err(|_| format!("bad section id `{}`", ops[0]))?;
            a.mark_start(id);
        }
        "mark.end" => {
            argc(1)?;
            let id: u16 = ops[0].parse().map_err(|_| format!("bad section id `{}`", ops[0]))?;
            a.mark_end(id);
        }
        "out" => {
            argc(1)?;
            a.out(parse_reg(&ops[0])?);
        }
        "outf" => {
            argc(1)?;
            a.outf(parse_freg(&ops[0])?);
        }
        "halt" => {
            argc(0)?;
            a.halt();
        }
        "nop" => {
            argc(0)?;
            a.nop();
        }
        _ => return Err(format!("unknown mnemonic `{mn}`")),
    }
    Ok(())
}

/// Emits a branch whose target may be a label or a literal index.
fn emit_branch(a: &mut Asm, cond: BrCond, rs1: Reg, rs2: Reg, target: &str) {
    if let Ok(idx) = target.parse::<u32>() {
        a.push(Instr::Br { cond, rs1, rs2, target: idx });
    } else {
        match cond {
            BrCond::Eq => a.beq(rs1, rs2, target),
            BrCond::Ne => a.bne(rs1, rs2, target),
            BrCond::Lt => a.blt(rs1, rs2, target),
            BrCond::Ge => a.bge(rs1, rs2, target),
            BrCond::Ltu => a.bltu(rs1, rs2, target),
            BrCond::Geu => a.bgeu(rs1, rs2, target),
        }
    }
}

/// Renders instructions as a parseable listing.
///
/// Every instruction index referenced by a branch, jump, or `nthr` gets a
/// `L<index>:` label, matching the `L<index>` operands printed by
/// [`Instr`]'s `Display`.
pub fn disassemble(text: &[Instr]) -> String {
    let targets: BTreeSet<u32> = text.iter().filter_map(Instr::static_target).collect();
    let mut out = String::new();
    for (i, insn) in text.iter().enumerate() {
        if targets.contains(&(i as u32)) {
            out.push_str(&format!("L{i}:\n"));
        }
        out.push_str(&format!("    {insn}\n"));
    }
    // A trailing label (branch to one-past-the-end is invalid, but targets
    // equal to len() can't occur in validated programs).
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_listing() {
        let src = r"
# sum the numbers 10..1
    li r1, 10
    li r2, 0
loop:
    add r2, r2, r1   ; accumulate
    addi r1, r1, -1
    bne r1, r0, loop
    out r2
    halt
";
        let text = parse(src).unwrap();
        assert_eq!(text.len(), 7);
        assert_eq!(text[4], Instr::Br { cond: BrCond::Ne, rs1: Reg(1), rs2: Reg(0), target: 2 });
    }

    #[test]
    fn parse_memory_operands() {
        let text = parse("    ld r1, 16(sp)\n    st r2, -8(r3)\n    fld f1, (gp)\n").unwrap();
        assert_eq!(text[0], Instr::Ld { rd: Reg(1), base: Reg::SP, off: 16 });
        assert_eq!(text[1], Instr::St { rs: Reg(2), base: Reg(3), off: -8 });
        assert_eq!(text[2], Instr::FLd { fd: FReg(1), base: Reg::GP, off: 0 });
    }

    #[test]
    fn parse_capsule_instructions() {
        let src = "start:\n    nthr r5, child\n    kthr\nchild:\n    mlock r1\n    munlock r1\n    kthr\n";
        let text = parse(src).unwrap();
        assert_eq!(text[0], Instr::Nthr { rd: Reg(5), target: 2 });
        assert_eq!(text[2], Instr::Mlock { rs: Reg(1) });
    }

    #[test]
    fn parse_hex_and_negative_immediates() {
        let text = parse("    li r1, 0x10\n    li r2, -0x10\n    addi r3, r1, -5\n").unwrap();
        assert_eq!(text[0], Instr::Li { rd: Reg(1), imm: 16 });
        assert_eq!(text[1], Instr::Li { rd: Reg(2), imm: -16 });
        assert_eq!(text[2], Instr::AluI { op: AluOp::Add, rd: Reg(3), rs1: Reg(1), imm: -5 });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("    nop\n    bogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("bogus"));

        let err = parse("    add r1, r2\n").unwrap_err();
        assert!(err.msg.contains("expects 3 operands"));

        let err = parse("    li r99, 1\n").unwrap_err();
        assert!(err.msg.contains("out of range"));
    }

    #[test]
    fn parse_undefined_label_reported() {
        let err = parse("    j nowhere\n").unwrap_err();
        assert!(err.msg.contains("undefined label"));
    }

    #[test]
    fn disassemble_then_parse_roundtrip() {
        let src = r"
    li r1, 5
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    nthr r3, worker
    j done
worker:
    fadd f1, f2, f3
    flt r4, f1, f2
    kthr
done:
    mark.start 1
    out r2
    mark.end 1
    halt
";
        let text = parse(src).unwrap();
        let dis = disassemble(&text);
        let re = parse(&dis).unwrap();
        assert_eq!(text, re);
    }

    #[test]
    fn numeric_branch_targets_accepted() {
        let text = parse("    beq r0, r0, 0\n").unwrap();
        assert_eq!(text[0], Instr::Br { cond: BrCond::Eq, rs1: Reg(0), rs2: Reg(0), target: 0 });
    }

    #[test]
    fn float_immediates_roundtrip() {
        let text = parse("    fli f1, 1.5\n    fli f2, -0.25\n").unwrap();
        assert_eq!(text[0], Instr::FLi { fd: FReg(1), imm: 1.5 });
        let dis = disassemble(&text);
        assert_eq!(parse(&dis).unwrap(), text);
    }
}

#[cfg(test)]
mod special_float_tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg::FReg;

    #[test]
    fn special_float_immediates_roundtrip_through_text() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -0.0] {
            let text = vec![Instr::FLi { fd: FReg(1), imm: v }];
            let listing = disassemble(&text);
            let back = parse(&listing).unwrap();
            match back[0] {
                Instr::FLi { imm, .. } => {
                    assert_eq!(imm.to_bits().is_power_of_two(), v.to_bits().is_power_of_two());
                    assert_eq!(imm.is_nan(), v.is_nan());
                    if !v.is_nan() {
                        assert_eq!(imm, v, "listing: {listing}");
                    }
                }
                ref other => panic!("wrong decode: {other:?}"),
            }
        }
    }
}
