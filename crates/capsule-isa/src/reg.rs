//! Architectural registers of CAP64.
//!
//! The machine has 32 integer registers (`r0` hardwired to zero) and 32
//! floating-point registers, matching the paper's 31 INT + 31 FP
//! architected registers (plus PC) that size the 62-register context-swap
//! cost.

use std::fmt;

/// An integer register `r0`..`r31`. `r0` reads as zero; writes are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of integer registers.
    pub const COUNT: usize = 32;

    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address (convention, used by `jal`).
    pub const RA: Reg = Reg(29);
    /// Stack pointer (convention).
    pub const SP: Reg = Reg(30);
    /// Global/base pointer (convention; the loader parks the data base here).
    pub const GP: Reg = Reg(31);

    /// First argument register (conventions `A0`..`A5` = `r1`..`r6`).
    pub const A0: Reg = Reg(1);
    /// Second argument register.
    pub const A1: Reg = Reg(2);
    /// Third argument register.
    pub const A2: Reg = Reg(3);
    /// Fourth argument register.
    pub const A3: Reg = Reg(4);
    /// Fifth argument register.
    pub const A4: Reg = Reg(5);
    /// Sixth argument register.
    pub const A5: Reg = Reg(6);

    /// Creates a register, checking range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn new(i: u8) -> Reg {
        assert!((i as usize) < Reg::COUNT, "integer register out of range: r{i}");
        Reg(i)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => write!(f, "sp"),
            Reg::RA => write!(f, "ra"),
            Reg::GP => write!(f, "gp"),
            Reg(i) => write!(f, "r{i}"),
        }
    }
}

/// A floating-point register `f0`..`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl FReg {
    /// Number of FP registers.
    pub const COUNT: usize = 32;

    /// Creates an FP register, checking range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn new(i: u8) -> FReg {
        assert!((i as usize) < FReg::COUNT, "fp register out of range: f{i}");
        FReg(i)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_conventions() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(Reg::GP.to_string(), "gp");
        assert_eq!(FReg(4).to_string(), "f4");
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_range_checked() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_range_checked() {
        let _ = FReg::new(99);
    }
}
