//! CAP64 — the instruction set of the CAPSULE reproduction.
//!
//! CAP64 is a 64-bit load/store RISC ISA carrying the paper's CAPSULE
//! extensions: `nthr` (probe + conditional thread division), `kthr`
//! (worker death), `mlock`/`munlock` (fast lock table), plus section
//! instrumentation (`mark.start`/`mark.end`) used to reproduce the paper's
//! componentized-section measurements.
//!
//! The crate provides:
//!
//! - the instruction model ([`instr::Instr`]) and registers ([`reg`]),
//! - a builder DSL with labels ([`asm::Asm`]) — the programmatic analog of
//!   the paper's assembly post-processor,
//! - a text assembler and disassembler ([`text`]),
//! - a fixed-width binary encoding ([`encode`]),
//! - loadable programs with initialized data and loader threads
//!   ([`program`]),
//! - the component runtime fragments — stack pool, token join, barrier —
//!   that the paper's toolchain links into post-processed programs
//!   ([`rtlib`]).
//!
//! # Example: a worker that conditionally divides
//!
//! ```
//! use capsule_isa::asm::Asm;
//! use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
//! use capsule_isa::reg::Reg;
//!
//! let (r_probe, r_lo, r_hi) = (Reg(10), Reg(11), Reg(12));
//! let mut a = Asm::new();
//! a.bind("worker");
//! // probe + conditional division: the switch of Figure 2 in the paper
//! a.nthr(r_probe, "right_half");
//! // case -1 (denied) and case 0 (parent / left half) fall through
//! a.bind("left_half");
//! // ... work on [lo, mid) ...
//! a.kthr();
//! a.bind("right_half");
//! // ... work on [mid, hi) ...
//! a.kthr();
//! let text = a.assemble()?;
//! let prog = Program::new(text, DataBuilder::new().build(), 4096)
//!     .with_thread(ThreadSpec::at(0).with_reg(r_lo, 0).with_reg(r_hi, 100));
//! prog.validate().unwrap();
//! # Ok::<(), capsule_isa::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod encode;
pub mod instr;
pub mod program;
pub mod reg;
pub mod rtlib;
pub mod text;

pub use asm::{Asm, AsmError};
pub use decode::{decode_text, decode_text_uncached, DecodedInstr, DecodedText, FetchClass};
pub use instr::{AluOp, BrCond, FAluOp, FCmpOp, FuClass, Instr, INSTR_BYTES};
pub use program::{DataBuilder, DataImage, Program, ProgramError, ThreadSpec, DATA_BASE};
pub use reg::{FReg, Reg};
