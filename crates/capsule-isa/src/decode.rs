//! Pre-decoded instruction metadata and the process-wide decode cache.
//!
//! The simulator's hot loops (fetch classification, dispatch renaming,
//! window allocation) used to re-derive per-instruction properties —
//! functional unit, latency, source/destination registers, memory and
//! control flags — through the match-heavy [`Instr`] accessors on every
//! dispatch of every dynamic instruction. A [`DecodedText`] computes all
//! of them once per *static* instruction and stores them as a dense
//! table indexed by pc, so the per-dispatch cost becomes two array loads.
//!
//! Decoded texts are shared: [`decode_text`] keys a process-wide cache by
//! the FNV-1a hash of the text's fixed-width binary encoding and hands
//! out `Arc<DecodedText>` clones. The keying is content-addressed, which
//! makes it invalidation-safe by construction — two programs that share
//! a pc range but differ in even one instruction hash to different keys
//! (and a hit re-verifies full text equality, so even a 64-bit hash
//! collision can never alias one program's decode to another's; the
//! colliding text just decodes uncached). The cache never returns stale
//! data because entries are immutable and keyed by content, not by
//! location.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::encode::encode;
use crate::instr::{FuClass, Instr};

/// Register slot meaning "no register" in the packed source/destination
/// fields of [`DecodedInstr`].
pub const NO_REG: u8 = 0xFF;

/// [`DecodedInstr`] flag: occupies an LSQ slot (load or store).
pub const F_MEM: u8 = 1 << 0;
/// [`DecodedInstr`] flag: load.
pub const F_LOAD: u8 = 1 << 1;
/// [`DecodedInstr`] flag: store.
pub const F_STORE: u8 = 1 << 2;
/// [`DecodedInstr`] flag: no functional unit ([`FuClass::None`]) — the
/// window entry is born issued and completed.
pub const F_INERT: u8 = 1 << 3;
/// [`DecodedInstr`] flag: indirect jump (`jr`/`jalr`) — fetch stalls at
/// it and dispatch redirects.
pub const F_INDIRECT: u8 = 1 << 4;

/// How fetch continues after this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchClass {
    /// Falls through to `pc + 1`.
    Fall,
    /// Conditional branch: consult the predictor; taken goes to `target`
    /// and ends the thread's fetch group this cycle.
    CondBr {
        /// Absolute instruction index of the taken path.
        target: u32,
    },
    /// Unconditional direct jump (`j`/`jal`): go to `target`, end the
    /// fetch group.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Fetch cannot continue past it (`jr`/`jalr`/`kthr`/`halt`): stall
    /// until dispatch redirects or the thread dies.
    Stop,
}

/// Everything the timing model needs to know about one static
/// instruction, pre-extracted from the [`Instr`] accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInstr {
    /// Functional-unit class ([`Instr::fu_class`]).
    pub fu: FuClass,
    /// Execution latency excluding memory ([`Instr::latency`]).
    pub latency: u8,
    /// `F_*` flag bits.
    pub flags: u8,
    /// Integer destination for renaming, [`NO_REG`] if none. Writes to
    /// `r0` are architectural no-ops and already filtered to [`NO_REG`].
    pub dest_int: u8,
    /// FP destination for renaming, [`NO_REG`] if none.
    pub dest_fp: u8,
    /// Integer source registers ([`NO_REG`]-padded).
    pub src_int: [u8; 2],
    /// FP source registers ([`NO_REG`]-padded).
    pub src_fp: [u8; 2],
    /// Fetch-time next-pc classification.
    pub fetch: FetchClass,
}

impl DecodedInstr {
    fn new(i: &Instr) -> DecodedInstr {
        let fu = i.fu_class();
        let mut flags = 0u8;
        if i.is_mem() {
            flags |= F_MEM;
        }
        if i.is_load() {
            flags |= F_LOAD;
        }
        if i.is_store() {
            flags |= F_STORE;
        }
        if fu == FuClass::None {
            flags |= F_INERT;
        }
        if matches!(i, Instr::Jr { .. } | Instr::Jalr { .. }) {
            flags |= F_INDIRECT;
        }
        let fetch = match *i {
            Instr::Br { target, .. } => FetchClass::CondBr { target },
            Instr::J { target } | Instr::Jal { target, .. } => FetchClass::Jump { target },
            Instr::Jr { .. } | Instr::Jalr { .. } | Instr::Kthr | Instr::Halt => FetchClass::Stop,
            _ => FetchClass::Fall,
        };
        let pack = |r: Option<u8>| r.unwrap_or(NO_REG);
        let srcs_i = i.sources_int();
        let srcs_f = i.sources_fp();
        DecodedInstr {
            fu,
            latency: i.latency() as u8,
            flags,
            dest_int: pack(i.dest_int().filter(|r| !r.is_zero()).map(|r| r.0)),
            dest_fp: pack(i.dest_fp().map(|f| f.0)),
            src_int: [pack(srcs_i[0].map(|r| r.0)), pack(srcs_i[1].map(|r| r.0))],
            src_fp: [pack(srcs_f[0].map(|f| f.0)), pack(srcs_f[1].map(|f| f.0))],
            fetch,
        }
    }

    /// Whether the `F_MEM` flag is set.
    pub fn is_mem(&self) -> bool {
        self.flags & F_MEM != 0
    }

    /// Whether the `F_LOAD` flag is set.
    pub fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    /// Whether the `F_INERT` flag is set.
    pub fn is_inert(&self) -> bool {
        self.flags & F_INERT != 0
    }

    /// Whether the `F_INDIRECT` flag is set.
    pub fn is_indirect(&self) -> bool {
        self.flags & F_INDIRECT != 0
    }
}

/// A program text plus its per-pc decoded metadata — the unit the decode
/// cache stores and shares (read-only, behind an `Arc`) across machines
/// and host threads.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedText {
    key: u64,
    instrs: Vec<Instr>,
    meta: Vec<DecodedInstr>,
}

impl DecodedText {
    fn build(key: u64, text: &[Instr]) -> DecodedText {
        DecodedText {
            key,
            instrs: text.to_vec(),
            meta: text.iter().map(DecodedInstr::new).collect(),
        }
    }

    /// Content key (FNV-1a over the binary encoding), 0 when the text
    /// contains an unencodable instruction.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn instr(&self, pc: usize) -> &Instr {
        &self.instrs[pc]
    }

    /// The decoded metadata at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn meta(&self, pc: usize) -> &DecodedInstr {
        &self.meta[pc]
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

/// Decode bypassing the cache (always rebuilds).
pub fn decode_text_uncached(text: &[Instr]) -> DecodedText {
    DecodedText::build(text_key(text).unwrap_or(0), text)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the fixed-width binary encoding of the whole text.
/// `None` when some instruction has no binary encoding (those texts are
/// simply not cached).
fn text_key(text: &[Instr]) -> Option<u64> {
    let mut h = FNV_OFFSET;
    let mut mix = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for i in text {
        let [a, b] = encode(i).ok()?;
        mix(a);
        mix(b);
    }
    Some(h)
}

/// Upper bound on cached texts; reaching it clears the whole cache
/// (content-addressed entries are interchangeable, so wholesale eviction
/// is always correct).
const CACHE_CAP: usize = 256;

struct DecodeCache {
    map: Mutex<HashMap<u64, Arc<DecodedText>>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn cache() -> &'static DecodeCache {
    static CACHE: OnceLock<DecodeCache> = OnceLock::new();
    CACHE.get_or_init(|| DecodeCache {
        map: Mutex::new(HashMap::new()),
        enabled: AtomicBool::new(true),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Decode `text`, sharing the result through the process-wide cache.
///
/// The cache key is the content hash of the text, so identical texts
/// (e.g. one workload across many datasets, or repeated jobs on a
/// server) decode once and share a single allocation; differing texts —
/// including ones occupying the same pc range — can never alias. A
/// rare 64-bit hash collision is detected by full-text comparison and
/// served uncached. When disabled via [`set_decode_cache_enabled`],
/// behaves exactly like [`decode_text_uncached`].
pub fn decode_text(text: &[Instr]) -> Arc<DecodedText> {
    let c = cache();
    if !c.enabled.load(Ordering::Relaxed) {
        return Arc::new(decode_text_uncached(text));
    }
    let Some(key) = text_key(text) else {
        return Arc::new(decode_text_uncached(text));
    };
    let mut map = c.map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(hit) = map.get(&key) {
        if hit.instrs() == text {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // 64-bit collision: serve correct data, leave the cache alone.
        return Arc::new(DecodedText::build(key, text));
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    let decoded = Arc::new(DecodedText::build(key, text));
    map.insert(key, Arc::clone(&decoded));
    decoded
}

/// Turns the process-wide decode cache on or off (on by default). Used
/// by the cache-parity regression tests; results are identical either
/// way, only sharing changes.
pub fn set_decode_cache_enabled(enabled: bool) {
    cache().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether the process-wide decode cache is enabled.
pub fn decode_cache_enabled() -> bool {
    cache().enabled.load(Ordering::Relaxed)
}

/// Drops every cached text.
pub fn clear_decode_cache() {
    cache().map.lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Number of texts currently cached.
pub fn decode_cache_len() -> usize {
    cache().map.lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// `(hits, misses)` since process start.
pub fn decode_cache_stats() -> (u64, u64) {
    let c = cache();
    (c.hits.load(Ordering::Relaxed), c.misses.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::{FReg, Reg};

    fn sample_text() -> Vec<Instr> {
        let mut a = Asm::new();
        a.li(Reg(1), 5);
        a.bind("loop");
        a.ld(Reg(2), 0, Reg(1));
        a.add(Reg(3), Reg(2), Reg(1));
        a.st(Reg(3), 8, Reg(1));
        a.addi(Reg(1), Reg(1), -1);
        a.bne(Reg(1), Reg::ZERO, "loop");
        a.halt();
        a.assemble().expect("assembles")
    }

    #[test]
    fn decoded_metadata_matches_the_accessors() {
        let text = sample_text();
        let d = decode_text_uncached(&text);
        assert_eq!(d.len(), text.len());
        for (pc, i) in text.iter().enumerate() {
            let m = d.meta(pc);
            assert_eq!(m.fu, i.fu_class(), "{i}");
            assert_eq!(m.latency as u64, i.latency(), "{i}");
            assert_eq!(m.is_mem(), i.is_mem(), "{i}");
            assert_eq!(m.is_load(), i.is_load(), "{i}");
            assert_eq!(m.is_inert(), i.fu_class() == FuClass::None, "{i}");
            let exp_dest = i.dest_int().filter(|r| !r.is_zero()).map_or(NO_REG, |r| r.0);
            assert_eq!(m.dest_int, exp_dest, "{i}");
            assert_eq!(m.dest_fp, i.dest_fp().map_or(NO_REG, |f| f.0), "{i}");
            for k in 0..2 {
                assert_eq!(m.src_int[k], i.sources_int()[k].map_or(NO_REG, |r| r.0), "{i}");
                assert_eq!(m.src_fp[k], i.sources_fp()[k].map_or(NO_REG, |f| f.0), "{i}");
            }
            assert_eq!(d.instr(pc), i);
        }
    }

    #[test]
    fn fetch_classes_cover_control_flow() {
        let text = vec![
            Instr::Nop,
            Instr::Br { cond: crate::instr::BrCond::Eq, rs1: Reg(1), rs2: Reg(2), target: 0 },
            Instr::J { target: 7 },
            Instr::Jal { rd: Reg(31), target: 7 },
            Instr::Jr { rs: Reg(1) },
            Instr::Jalr { rd: Reg(31), rs: Reg(1) },
            Instr::Kthr,
            Instr::Halt,
        ];
        let d = decode_text_uncached(&text);
        assert_eq!(d.meta(0).fetch, FetchClass::Fall);
        assert_eq!(d.meta(1).fetch, FetchClass::CondBr { target: 0 });
        assert_eq!(d.meta(2).fetch, FetchClass::Jump { target: 7 });
        assert_eq!(d.meta(3).fetch, FetchClass::Jump { target: 7 });
        assert_eq!(d.meta(4).fetch, FetchClass::Stop);
        assert!(d.meta(4).is_indirect());
        assert_eq!(d.meta(5).fetch, FetchClass::Stop);
        assert!(d.meta(5).is_indirect());
        assert_eq!(d.meta(6).fetch, FetchClass::Stop);
        assert!(!d.meta(6).is_indirect());
        assert_eq!(d.meta(7).fetch, FetchClass::Stop);
    }

    #[test]
    fn r0_destination_is_filtered_for_renaming() {
        let d = decode_text_uncached(&[Instr::Li { rd: Reg::ZERO, imm: 1 }]);
        assert_eq!(d.meta(0).dest_int, NO_REG);
    }

    #[test]
    fn fp_metadata_roundtrips() {
        let text = vec![
            Instr::FLi { fd: FReg(1), imm: 2.5 },
            Instr::FAlu { op: crate::instr::FAluOp::Mul, fd: FReg(2), fs1: FReg(1), fs2: FReg(1) },
        ];
        let d = decode_text_uncached(&text);
        assert_eq!(d.meta(0).dest_fp, 1);
        assert_eq!(d.meta(1).fu, FuClass::FpMult);
        assert_eq!(d.meta(1).src_fp, [1, 1]);
    }

    #[test]
    fn cache_shares_identical_texts_and_separates_different_ones() {
        let text = sample_text();
        // Two different programs occupying the same pc range must never
        // alias, however similar.
        let mut other = text.clone();
        other[0] = Instr::Li { rd: Reg(1), imm: 6 };

        let a = decode_text(&text);
        let b = decode_text(&text);
        let c = decode_text(&other);
        assert!(Arc::ptr_eq(&a, &b), "identical texts share one decode");
        assert!(!Arc::ptr_eq(&a, &c), "different texts are distinct entries");
        assert_ne!(a.key(), c.key());
        assert_eq!(c.meta(0).dest_int, 1);
        assert_eq!(*c.instr(0), other[0]);

        // Cached and uncached decodes are equal in content.
        assert_eq!(*a, decode_text_uncached(&text));
        assert_eq!(*c, decode_text_uncached(&other));

        // Disabling the cache changes sharing, never content. (Same test
        // body: the enabled flag is process-global, so toggling it in a
        // parallel test would race with the sharing assertions above.)
        set_decode_cache_enabled(false);
        let unshared = decode_text(&text);
        set_decode_cache_enabled(true);
        assert!(!Arc::ptr_eq(&a, &unshared));
        assert_eq!(*a, *unshared);
    }
}
