//! Fixed-width binary encoding of CAP64 instructions.
//!
//! Each instruction encodes into two 64-bit words:
//!
//! ```text
//! word0: | opcode:8 | subop:8 | rd:8 | rs1:8 | rs2:8 | aux:24 |
//! word1: | immediate bits (i64 / f64) :64 |
//! ```
//!
//! `aux` carries 24-bit absolute targets (branches, jumps, `nthr`) and
//! section ids; `word1` carries immediates and memory offsets. The
//! encoding exists so programs can be persisted and exchanged; the
//! simulator itself executes the decoded [`Instr`] form.

use std::fmt;

use crate::instr::{AluOp, BrCond, FAluOp, FCmpOp, Instr};
use crate::reg::{FReg, Reg};

/// Encoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch/jump/`nthr` target exceeds 24 bits.
    TargetTooLarge(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TargetTooLarge(t) => write!(f, "target {t} exceeds 24 bits"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Sub-operation out of range for the opcode.
    BadSubop(u8),
    /// Register field out of range.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode {b:#x}"),
            DecodeError::BadSubop(b) => write!(f, "bad sub-operation {b:#x}"),
            DecodeError::BadRegister(b) => write!(f, "register field out of range: {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u8 = 0;
const OP_ALU: u8 = 1;
const OP_ALUI: u8 = 2;
const OP_LI: u8 = 3;
const OP_LD: u8 = 4;
const OP_ST: u8 = 5;
const OP_LDB: u8 = 6;
const OP_STB: u8 = 7;
const OP_FLD: u8 = 8;
const OP_FST: u8 = 9;
const OP_BR: u8 = 10;
const OP_J: u8 = 11;
const OP_JAL: u8 = 12;
const OP_JR: u8 = 13;
const OP_JALR: u8 = 14;
const OP_FALU: u8 = 15;
const OP_FLI: u8 = 16;
const OP_FCMP: u8 = 17;
const OP_CVTIF: u8 = 18;
const OP_CVTFI: u8 = 19;
const OP_NTHR: u8 = 20;
const OP_KTHR: u8 = 21;
const OP_MLOCK: u8 = 22;
const OP_MUNLOCK: u8 = 23;
const OP_NCTX: u8 = 24;
const OP_TID: u8 = 25;
const OP_MARKSTART: u8 = 26;
const OP_MARKEND: u8 = 27;
const OP_OUT: u8 = 28;
const OP_OUTF: u8 = 29;
const OP_HALT: u8 = 30;

const AUX_MAX: u32 = (1 << 24) - 1;

fn pack(op: u8, subop: u8, rd: u8, rs1: u8, rs2: u8, aux: u32) -> Result<u64, EncodeError> {
    if aux > AUX_MAX {
        return Err(EncodeError::TargetTooLarge(aux));
    }
    Ok(op as u64
        | (subop as u64) << 8
        | (rd as u64) << 16
        | (rs1 as u64) << 24
        | (rs2 as u64) << 32
        | (aux as u64) << 40)
}

/// Encodes one instruction into two 64-bit words.
///
/// # Errors
///
/// [`EncodeError::TargetTooLarge`] when a control target exceeds 24 bits
/// (programs assembled through [`crate::asm::Asm`] are already bounded).
pub fn encode(i: &Instr) -> Result<[u64; 2], EncodeError> {
    let w = |w0: Result<u64, EncodeError>, imm: u64| -> Result<[u64; 2], EncodeError> {
        Ok([w0?, imm])
    };
    let subop_alu =
        |op: AluOp| AluOp::ALL.iter().position(|&o| o == op).expect("op is in ALL") as u8;
    let subop_falu =
        |op: FAluOp| FAluOp::ALL.iter().position(|&o| o == op).expect("op is in ALL") as u8;
    let subop_fcmp =
        |op: FCmpOp| FCmpOp::ALL.iter().position(|&o| o == op).expect("op is in ALL") as u8;
    let subop_br =
        |c: BrCond| BrCond::ALL.iter().position(|&o| o == c).expect("cond is in ALL") as u8;

    match *i {
        Instr::Nop => w(pack(OP_NOP, 0, 0, 0, 0, 0), 0),
        Instr::Alu { op, rd, rs1, rs2 } => w(pack(OP_ALU, subop_alu(op), rd.0, rs1.0, rs2.0, 0), 0),
        Instr::AluI { op, rd, rs1, imm } => {
            w(pack(OP_ALUI, subop_alu(op), rd.0, rs1.0, 0, 0), imm as u64)
        }
        Instr::Li { rd, imm } => w(pack(OP_LI, 0, rd.0, 0, 0, 0), imm as u64),
        Instr::Ld { rd, base, off } => w(pack(OP_LD, 0, rd.0, base.0, 0, 0), off as u64),
        Instr::St { rs, base, off } => w(pack(OP_ST, 0, 0, rs.0, base.0, 0), off as u64),
        Instr::Ldb { rd, base, off } => w(pack(OP_LDB, 0, rd.0, base.0, 0, 0), off as u64),
        Instr::Stb { rs, base, off } => w(pack(OP_STB, 0, 0, rs.0, base.0, 0), off as u64),
        Instr::FLd { fd, base, off } => w(pack(OP_FLD, 0, fd.0, base.0, 0, 0), off as u64),
        Instr::FSt { fs, base, off } => w(pack(OP_FST, 0, 0, fs.0, base.0, 0), off as u64),
        Instr::Br { cond, rs1, rs2, target } => {
            w(pack(OP_BR, subop_br(cond), 0, rs1.0, rs2.0, target), 0)
        }
        Instr::J { target } => w(pack(OP_J, 0, 0, 0, 0, target), 0),
        Instr::Jal { rd, target } => w(pack(OP_JAL, 0, rd.0, 0, 0, target), 0),
        Instr::Jr { rs } => w(pack(OP_JR, 0, 0, rs.0, 0, 0), 0),
        Instr::Jalr { rd, rs } => w(pack(OP_JALR, 0, rd.0, rs.0, 0, 0), 0),
        Instr::FAlu { op, fd, fs1, fs2 } => {
            w(pack(OP_FALU, subop_falu(op), fd.0, fs1.0, fs2.0, 0), 0)
        }
        Instr::FLi { fd, imm } => w(pack(OP_FLI, 0, fd.0, 0, 0, 0), imm.to_bits()),
        Instr::FCmp { op, rd, fs1, fs2 } => {
            w(pack(OP_FCMP, subop_fcmp(op), rd.0, fs1.0, fs2.0, 0), 0)
        }
        Instr::CvtIF { fd, rs } => w(pack(OP_CVTIF, 0, fd.0, rs.0, 0, 0), 0),
        Instr::CvtFI { rd, fs } => w(pack(OP_CVTFI, 0, rd.0, fs.0, 0, 0), 0),
        Instr::Nthr { rd, target } => w(pack(OP_NTHR, 0, rd.0, 0, 0, target), 0),
        Instr::Kthr => w(pack(OP_KTHR, 0, 0, 0, 0, 0), 0),
        Instr::Mlock { rs } => w(pack(OP_MLOCK, 0, 0, rs.0, 0, 0), 0),
        Instr::Munlock { rs } => w(pack(OP_MUNLOCK, 0, 0, rs.0, 0, 0), 0),
        Instr::Nctx { rd } => w(pack(OP_NCTX, 0, rd.0, 0, 0, 0), 0),
        Instr::Tid { rd } => w(pack(OP_TID, 0, rd.0, 0, 0, 0), 0),
        Instr::MarkStart { id } => w(pack(OP_MARKSTART, 0, 0, 0, 0, id as u32), 0),
        Instr::MarkEnd { id } => w(pack(OP_MARKEND, 0, 0, 0, 0, id as u32), 0),
        Instr::Out { rs } => w(pack(OP_OUT, 0, 0, rs.0, 0, 0), 0),
        Instr::OutF { fs } => w(pack(OP_OUTF, 0, 0, fs.0, 0, 0), 0),
        Instr::Halt => w(pack(OP_HALT, 0, 0, 0, 0, 0), 0),
    }
}

fn reg(b: u8) -> Result<Reg, DecodeError> {
    if (b as usize) < Reg::COUNT {
        Ok(Reg(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

fn freg(b: u8) -> Result<FReg, DecodeError> {
    if (b as usize) < FReg::COUNT {
        Ok(FReg(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

/// Decodes two words back into an instruction.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(words: [u64; 2]) -> Result<Instr, DecodeError> {
    let w0 = words[0];
    let imm = words[1];
    let op = (w0 & 0xff) as u8;
    let subop = ((w0 >> 8) & 0xff) as u8;
    let rd = ((w0 >> 16) & 0xff) as u8;
    let rs1 = ((w0 >> 24) & 0xff) as u8;
    let rs2 = ((w0 >> 32) & 0xff) as u8;
    let aux = ((w0 >> 40) & 0xff_ffff) as u32;

    let alu_op = |s: u8| AluOp::ALL.get(s as usize).copied().ok_or(DecodeError::BadSubop(s));
    let falu_op = |s: u8| FAluOp::ALL.get(s as usize).copied().ok_or(DecodeError::BadSubop(s));
    let fcmp_op = |s: u8| FCmpOp::ALL.get(s as usize).copied().ok_or(DecodeError::BadSubop(s));
    let br_cond = |s: u8| BrCond::ALL.get(s as usize).copied().ok_or(DecodeError::BadSubop(s));

    Ok(match op {
        OP_NOP => Instr::Nop,
        OP_ALU => Instr::Alu { op: alu_op(subop)?, rd: reg(rd)?, rs1: reg(rs1)?, rs2: reg(rs2)? },
        OP_ALUI => {
            Instr::AluI { op: alu_op(subop)?, rd: reg(rd)?, rs1: reg(rs1)?, imm: imm as i64 }
        }
        OP_LI => Instr::Li { rd: reg(rd)?, imm: imm as i64 },
        OP_LD => Instr::Ld { rd: reg(rd)?, base: reg(rs1)?, off: imm as i64 },
        OP_ST => Instr::St { rs: reg(rs1)?, base: reg(rs2)?, off: imm as i64 },
        OP_LDB => Instr::Ldb { rd: reg(rd)?, base: reg(rs1)?, off: imm as i64 },
        OP_STB => Instr::Stb { rs: reg(rs1)?, base: reg(rs2)?, off: imm as i64 },
        OP_FLD => Instr::FLd { fd: freg(rd)?, base: reg(rs1)?, off: imm as i64 },
        OP_FST => Instr::FSt { fs: freg(rs1)?, base: reg(rs2)?, off: imm as i64 },
        OP_BR => Instr::Br { cond: br_cond(subop)?, rs1: reg(rs1)?, rs2: reg(rs2)?, target: aux },
        OP_J => Instr::J { target: aux },
        OP_JAL => Instr::Jal { rd: reg(rd)?, target: aux },
        OP_JR => Instr::Jr { rs: reg(rs1)? },
        OP_JALR => Instr::Jalr { rd: reg(rd)?, rs: reg(rs1)? },
        OP_FALU => {
            Instr::FAlu { op: falu_op(subop)?, fd: freg(rd)?, fs1: freg(rs1)?, fs2: freg(rs2)? }
        }
        OP_FLI => Instr::FLi { fd: freg(rd)?, imm: f64::from_bits(imm) },
        OP_FCMP => {
            Instr::FCmp { op: fcmp_op(subop)?, rd: reg(rd)?, fs1: freg(rs1)?, fs2: freg(rs2)? }
        }
        OP_CVTIF => Instr::CvtIF { fd: freg(rd)?, rs: reg(rs1)? },
        OP_CVTFI => Instr::CvtFI { rd: reg(rd)?, fs: freg(rs1)? },
        OP_NTHR => Instr::Nthr { rd: reg(rd)?, target: aux },
        OP_KTHR => Instr::Kthr,
        OP_MLOCK => Instr::Mlock { rs: reg(rs1)? },
        OP_MUNLOCK => Instr::Munlock { rs: reg(rs1)? },
        OP_NCTX => Instr::Nctx { rd: reg(rd)? },
        OP_TID => Instr::Tid { rd: reg(rd)? },
        OP_MARKSTART => Instr::MarkStart { id: aux as u16 },
        OP_MARKEND => Instr::MarkEnd { id: aux as u16 },
        OP_OUT => Instr::Out { rs: reg(rs1)? },
        OP_OUTF => Instr::OutF { fs: freg(rs1)? },
        OP_HALT => Instr::Halt,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Encodes a whole program text.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_all(text: &[Instr]) -> Result<Vec<u64>, EncodeError> {
    let mut out = Vec::with_capacity(text.len() * 2);
    for i in text {
        let [a, b] = encode(i)?;
        out.push(a);
        out.push(b);
    }
    Ok(out)
}

/// Decodes a stream produced by [`encode_all`].
///
/// # Errors
///
/// [`DecodeError::BadOpcode`] on truncated input (odd word count) or any
/// per-instruction decode failure.
pub fn decode_all(words: &[u64]) -> Result<Vec<Instr>, DecodeError> {
    if !words.len().is_multiple_of(2) {
        return Err(DecodeError::BadOpcode(0xff));
    }
    words.chunks_exact(2).map(|c| decode([c[0], c[1]])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::Alu { op: AluOp::Add, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) },
            Instr::AluI { op: AluOp::Xor, rd: Reg(4), rs1: Reg(5), imm: -1234567890123 },
            Instr::Li { rd: Reg(6), imm: i64::MIN },
            Instr::Ld { rd: Reg(7), base: Reg::SP, off: -16 },
            Instr::St { rs: Reg(8), base: Reg(9), off: 4096 },
            Instr::Ldb { rd: Reg(1), base: Reg(2), off: 3 },
            Instr::Stb { rs: Reg(3), base: Reg(4), off: -3 },
            Instr::FLd { fd: FReg(1), base: Reg(2), off: 8 },
            Instr::FSt { fs: FReg(2), base: Reg(3), off: 8 },
            Instr::Br { cond: BrCond::Ltu, rs1: Reg(1), rs2: Reg(2), target: 12345 },
            Instr::J { target: 0 },
            Instr::Jal { rd: Reg::RA, target: AUX_MAX },
            Instr::Jr { rs: Reg::RA },
            Instr::Jalr { rd: Reg(1), rs: Reg(2) },
            Instr::FAlu { op: FAluOp::Div, fd: FReg(3), fs1: FReg(4), fs2: FReg(5) },
            Instr::FLi { fd: FReg(6), imm: -0.0 },
            Instr::FCmp { op: FCmpOp::Le, rd: Reg(1), fs1: FReg(2), fs2: FReg(3) },
            Instr::CvtIF { fd: FReg(7), rs: Reg(8) },
            Instr::CvtFI { rd: Reg(9), fs: FReg(10) },
            Instr::Nthr { rd: Reg(5), target: 77 },
            Instr::Kthr,
            Instr::Mlock { rs: Reg(11) },
            Instr::Munlock { rs: Reg(11) },
            Instr::Nctx { rd: Reg(12) },
            Instr::Tid { rd: Reg(13) },
            Instr::MarkStart { id: 65535 },
            Instr::MarkEnd { id: 0 },
            Instr::Out { rs: Reg(14) },
            Instr::OutF { fs: FReg(15) },
            Instr::Halt,
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for i in sample_instrs() {
            let enc = encode(&i).unwrap();
            let dec = decode(enc).unwrap();
            // Compare via Debug to handle -0.0 bit-exactly.
            assert_eq!(format!("{i:?}"), format!("{dec:?}"), "variant {i}");
        }
    }

    #[test]
    fn roundtrip_stream() {
        let text = sample_instrs();
        let words = encode_all(&text).unwrap();
        assert_eq!(words.len(), text.len() * 2);
        let back = decode_all(&words).unwrap();
        assert_eq!(format!("{text:?}"), format!("{back:?}"));
    }

    #[test]
    fn target_too_large_rejected() {
        let i = Instr::J { target: AUX_MAX + 1 };
        assert_eq!(encode(&i), Err(EncodeError::TargetTooLarge(AUX_MAX + 1)));
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode([0xfe, 0]), Err(DecodeError::BadOpcode(0xfe)));
    }

    #[test]
    fn bad_register_rejected() {
        // OP_LI with rd = 40.
        let w0 = OP_LI as u64 | (40u64 << 16);
        assert_eq!(decode([w0, 0]), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn bad_subop_rejected() {
        let w0 = OP_ALU as u64 | (99u64 << 8);
        assert_eq!(decode([w0, 0]), Err(DecodeError::BadSubop(99)));
    }

    #[test]
    fn truncated_stream_rejected() {
        assert!(decode_all(&[0]).is_err());
    }

    #[test]
    fn nan_survives_roundtrip() {
        let i = Instr::FLi { fd: FReg(0), imm: f64::NAN };
        let dec = decode(encode(&i).unwrap()).unwrap();
        match dec {
            Instr::FLi { imm, .. } => assert!(imm.is_nan()),
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
