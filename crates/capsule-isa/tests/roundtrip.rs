//! Property tests: arbitrary instructions survive the binary encoding and
//! the text assembler round-trips.
//!
//! Cases are generated from a fixed-seed [`capsule_core::rng`] stream, so
//! the suite is deterministic, hermetic (no proptest dependency) and runs
//! in the default `cargo test`. Build with `--features props` for a much
//! larger sweep.

use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_isa::instr::{AluOp, BrCond, FAluOp, FCmpOp, Instr};
use capsule_isa::reg::{FReg, Reg};
use capsule_isa::{encode, text};

fn cases(default: usize) -> usize {
    if cfg!(feature = "props") {
        default * 20
    } else {
        default
    }
}

fn reg(rng: &mut impl Rng) -> Reg {
    Reg(rng.u64_below(32) as u8)
}

fn freg(rng: &mut impl Rng) -> FReg {
    FReg(rng.u64_below(32) as u8)
}

fn pick<T: Copy>(rng: &mut impl Rng, all: &[T]) -> T {
    all[rng.usize_below(all.len())]
}

fn target(rng: &mut impl Rng) -> u32 {
    rng.u64_below(1 << 24) as u32
}

fn offset(rng: &mut impl Rng) -> i64 {
    rng.i64_range(-4096, 4096)
}

/// Any encodable instruction. Floats are restricted to finite values so
/// text round-trips compare cleanly (NaN is covered by a unit test).
fn random_instr(rng: &mut impl Rng) -> Instr {
    match rng.u64_below(31) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::Kthr,
        3 => Instr::Alu { op: pick(rng, &AluOp::ALL), rd: reg(rng), rs1: reg(rng), rs2: reg(rng) },
        4 => Instr::AluI {
            op: pick(rng, &AluOp::ALL),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.next_u64() as i64,
        },
        5 => Instr::Li { rd: reg(rng), imm: rng.next_u64() as i64 },
        6 => Instr::Ld { rd: reg(rng), base: reg(rng), off: offset(rng) },
        7 => Instr::St { rs: reg(rng), base: reg(rng), off: offset(rng) },
        8 => Instr::Ldb { rd: reg(rng), base: reg(rng), off: offset(rng) },
        9 => Instr::Stb { rs: reg(rng), base: reg(rng), off: offset(rng) },
        10 => Instr::FLd { fd: freg(rng), base: reg(rng), off: offset(rng) },
        11 => Instr::FSt { fs: freg(rng), base: reg(rng), off: offset(rng) },
        12 => Instr::Br {
            cond: pick(rng, &BrCond::ALL),
            rs1: reg(rng),
            rs2: reg(rng),
            target: target(rng),
        },
        13 => Instr::J { target: target(rng) },
        14 => Instr::Jal { rd: reg(rng), target: target(rng) },
        15 => Instr::Jr { rs: reg(rng) },
        16 => Instr::Jalr { rd: reg(rng), rs: reg(rng) },
        17 => Instr::FAlu {
            op: pick(rng, &FAluOp::ALL),
            fd: freg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
        },
        18 => Instr::FLi { fd: freg(rng), imm: rng.f64_range(-1e100, 1e100) },
        19 => Instr::FCmp {
            op: pick(rng, &FCmpOp::ALL),
            rd: reg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
        },
        20 => Instr::CvtIF { fd: freg(rng), rs: reg(rng) },
        21 => Instr::CvtFI { rd: reg(rng), fs: freg(rng) },
        22 => Instr::Nthr { rd: reg(rng), target: target(rng) },
        23 => Instr::Mlock { rs: reg(rng) },
        24 => Instr::Munlock { rs: reg(rng) },
        25 => Instr::Nctx { rd: reg(rng) },
        26 => Instr::Tid { rd: reg(rng) },
        27 => Instr::MarkStart { id: rng.u64_below(1 << 16) as u16 },
        28 => Instr::MarkEnd { id: rng.u64_below(1 << 16) as u16 },
        29 => Instr::Out { rs: reg(rng) },
        _ => Instr::OutF { fs: freg(rng) },
    }
}

#[test]
fn binary_encoding_roundtrips() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x15a_0001);
    for case in 0..cases(2000) {
        let i = random_instr(&mut rng);
        let enc = encode::encode(&i).unwrap();
        let dec = encode::decode(enc).unwrap();
        assert_eq!(format!("{i:?}"), format!("{dec:?}"), "case {case}");
    }
}

#[test]
fn binary_stream_roundtrips() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x15a_0002);
    for case in 0..cases(64) {
        let len = rng.usize_below(64);
        let is: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
        let words = encode::encode_all(&is).unwrap();
        let back = encode::decode_all(&words).unwrap();
        assert_eq!(format!("{is:?}"), format!("{back:?}"), "case {case}");
    }
}

/// Disassembling a program whose targets are all in range, then
/// reparsing, reproduces the same instruction stream.
#[test]
fn text_roundtrips() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x15a_0003);
    for case in 0..cases(64) {
        let len = rng.usize_below(63) + 1;
        // Clamp targets into range so the listing is self-consistent.
        let fixed: Vec<Instr> = (0..len)
            .map(|_| {
                let mut i = random_instr(&mut rng);
                if let Some(t) = i.static_target() {
                    let t = t % len as u32;
                    match &mut i {
                        Instr::Br { target, .. }
                        | Instr::J { target }
                        | Instr::Jal { target, .. }
                        | Instr::Nthr { target, .. } => *target = t,
                        _ => unreachable!(),
                    }
                }
                i
            })
            .collect();
        let listing = text::disassemble(&fixed);
        let back = text::parse(&listing).unwrap();
        assert_eq!(format!("{fixed:?}"), format!("{back:?}"), "case {case}");
    }
}
