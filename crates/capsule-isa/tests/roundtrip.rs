//! Property tests: arbitrary instructions survive the binary encoding and
//! the text assembler round-trips.

use capsule_isa::instr::{AluOp, BrCond, FAluOp, FCmpOp, Instr};
use capsule_isa::reg::{FReg, Reg};
use capsule_isa::{encode, text};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn freg_strategy() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn falu_op() -> impl Strategy<Value = FAluOp> {
    prop::sample::select(FAluOp::ALL.to_vec())
}

fn fcmp_op() -> impl Strategy<Value = FCmpOp> {
    prop::sample::select(FCmpOp::ALL.to_vec())
}

fn br_cond() -> impl Strategy<Value = BrCond> {
    prop::sample::select(BrCond::ALL.to_vec())
}

fn target() -> impl Strategy<Value = u32> {
    0u32..(1 << 24)
}

/// Any encodable instruction. Floats are restricted to finite values so
/// text round-trips compare cleanly (NaN is covered by a unit test).
fn instr_strategy() -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    let f = freg_strategy;
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Kthr),
        (alu_op(), r(), r(), r()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        (alu_op(), r(), r(), any::<i64>())
            .prop_map(|(op, rd, rs1, imm)| Instr::AluI { op, rd, rs1, imm }),
        (r(), any::<i64>()).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (r(), r(), -4096i64..4096).prop_map(|(rd, base, off)| Instr::Ld { rd, base, off }),
        (r(), r(), -4096i64..4096).prop_map(|(rs, base, off)| Instr::St { rs, base, off }),
        (r(), r(), -4096i64..4096).prop_map(|(rd, base, off)| Instr::Ldb { rd, base, off }),
        (r(), r(), -4096i64..4096).prop_map(|(rs, base, off)| Instr::Stb { rs, base, off }),
        (f(), r(), -4096i64..4096).prop_map(|(fd, base, off)| Instr::FLd { fd, base, off }),
        (f(), r(), -4096i64..4096).prop_map(|(fs, base, off)| Instr::FSt { fs, base, off }),
        (br_cond(), r(), r(), target())
            .prop_map(|(cond, rs1, rs2, target)| Instr::Br { cond, rs1, rs2, target }),
        target().prop_map(|target| Instr::J { target }),
        (r(), target()).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        r().prop_map(|rs| Instr::Jr { rs }),
        (r(), r()).prop_map(|(rd, rs)| Instr::Jalr { rd, rs }),
        (falu_op(), f(), f(), f())
            .prop_map(|(op, fd, fs1, fs2)| Instr::FAlu { op, fd, fs1, fs2 }),
        (f(), -1e100f64..1e100).prop_map(|(fd, imm)| Instr::FLi { fd, imm }),
        (fcmp_op(), r(), f(), f())
            .prop_map(|(op, rd, fs1, fs2)| Instr::FCmp { op, rd, fs1, fs2 }),
        (f(), r()).prop_map(|(fd, rs)| Instr::CvtIF { fd, rs }),
        (r(), f()).prop_map(|(rd, fs)| Instr::CvtFI { rd, fs }),
        (r(), target()).prop_map(|(rd, target)| Instr::Nthr { rd, target }),
        r().prop_map(|rs| Instr::Mlock { rs }),
        r().prop_map(|rs| Instr::Munlock { rs }),
        r().prop_map(|rd| Instr::Nctx { rd }),
        r().prop_map(|rd| Instr::Tid { rd }),
        any::<u16>().prop_map(|id| Instr::MarkStart { id }),
        any::<u16>().prop_map(|id| Instr::MarkEnd { id }),
        r().prop_map(|rs| Instr::Out { rs }),
        f().prop_map(|fs| Instr::OutF { fs }),
    ]
}

proptest! {
    #[test]
    fn binary_encoding_roundtrips(i in instr_strategy()) {
        let enc = encode::encode(&i).unwrap();
        let dec = encode::decode(enc).unwrap();
        prop_assert_eq!(format!("{:?}", i), format!("{:?}", dec));
    }

    #[test]
    fn binary_stream_roundtrips(is in prop::collection::vec(instr_strategy(), 0..64)) {
        let words = encode::encode_all(&is).unwrap();
        let back = encode::decode_all(&words).unwrap();
        prop_assert_eq!(format!("{:?}", is), format!("{:?}", back));
    }

    /// Disassembling a program whose targets are all in range, then
    /// reparsing, reproduces the same instruction stream.
    #[test]
    fn text_roundtrips(is in prop::collection::vec(instr_strategy(), 1..64)) {
        // Clamp targets into range so the listing is self-consistent.
        let len = is.len() as u32;
        let fixed: Vec<Instr> = is
            .into_iter()
            .map(|mut i| {
                if let Some(t) = i.static_target() {
                    let t = t % len;
                    match &mut i {
                        Instr::Br { target, .. }
                        | Instr::J { target }
                        | Instr::Jal { target, .. }
                        | Instr::Nthr { target, .. } => *target = t,
                        _ => unreachable!(),
                    }
                }
                i
            })
            .collect();
        let listing = text::disassemble(&fixed);
        let back = text::parse(&listing).unwrap();
        prop_assert_eq!(format!("{:?}", fixed), format!("{:?}", back));
    }
}
