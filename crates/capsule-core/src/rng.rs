//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace is hermetic: nothing outside `std` is linked, so the
//! dataset generators and the seeded property-style tests draw from this
//! module instead of the `rand` crate. Two well-known generators are
//! provided:
//!
//! - [`SplitMix64`] — the 64-bit finalizer-based generator of Steele,
//!   Lea & Flood (used by Java's `SplittableRandom`). Fast, tiny state,
//!   and the canonical way to expand a single `u64` seed.
//! - [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256\*\*, the
//!   general-purpose generator used everywhere a stream of values is
//!   consumed. Seeded from a `u64` through SplitMix64, as its authors
//!   recommend.
//!
//! Both implement [`Rng`], which layers the helpers the generators'
//! consumers need: unbiased integer ranges, floating ranges, Bernoulli
//! draws, Fisher–Yates [`Rng::shuffle`], and Box–Muller
//! [`Rng::gaussian`]. Sequences are stable forever: the golden-vector
//! tests below pin the first outputs of both generators, so a change to
//! either algorithm is a test failure, not a silent dataset change.

/// The SplitMix64 generator (Steele, Lea & Flood; `SplittableRandom`).
///
/// ```
/// use capsule_core::rng::{Rng, SplitMix64};
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256\*\* generator (Blackman & Vigna, 2018).
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush. The workhorse
/// generator behind every seeded dataset in `capsule-workloads`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running SplitMix64 on `seed`, as the
    /// xoshiro authors recommend (the state is never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A deterministic 64-bit generator plus the derived draws the
/// workspace needs. Only [`Rng::next_u64`] is required.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit output (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `0..n` without modulo bias (rejection
    /// sampling over the largest multiple of `n` below 2⁶⁴).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        // 2^64 mod n, computed without overflowing u64.
        let rem = (u64::MAX % n + 1) % n;
        let limit = u64::MAX - rem; // last value of the unbiased zone
        loop {
            let v = self.next_u64();
            if v <= limit {
                return v % n;
            }
        }
    }

    /// Uniform draw from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.u64_below(span) as i64)
    }

    /// Uniform draw from the closed range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn i64_range_incl(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.u64_below(span + 1) as i64)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range {lo}..{hi}");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.usize_below(i + 1);
            data.swap(i, j);
        }
    }

    /// Gaussian draw (Box–Muller) with the given mean and standard
    /// deviation.
    fn gaussian(&mut self, mean: f64, stddev: f64) -> f64 {
        // u1 in (0, 1] so the log is finite; u2 in [0, 1).
        let u1 = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + stddev * r * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical SplitMix64 sequence for seed 0 (matches the published
    /// reference implementation and Java's `SplittableRandom`).
    #[test]
    fn splitmix64_golden_seed0() {
        let mut r = SplitMix64::new(0);
        let got: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec,
                0x1b39896a51a8749b,
                0x53cb9f0c747ea2ea,
                0x2c829abe1f4532e1,
                0xc584133ac916ab3c,
                0x3ee5789041c98ac3,
                0xf3b8488c368cb0a6,
            ]
        );
    }

    #[test]
    fn splitmix64_golden_seed_deadbeef() {
        let mut r = SplitMix64::new(0xdead_beef);
        let got: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x4adfb90f68c9eb9b,
                0xde586a3141a10922,
                0x021fbc2f8e1cfc1d,
                0x7466ce737be16790,
                0x3bfa8764f685bd1c,
                0xab203e503cb55b3f,
                0x5a2fdc2bf68cedb3,
                0xb30a4ccf430b1b5a,
                0x0a90415039bd5985,
                0x26ae50847745eb7e,
            ]
        );
    }

    #[test]
    fn xoshiro_golden_seed0() {
        let mut r = Xoshiro256StarStar::seed_from_u64(0);
        let got: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x99ec5f36cb75f2b4,
                0xbf6e1f784956452a,
                0x1a5f849d4933e6e0,
                0x6aa594f1262d2d2c,
                0xbba5ad4a1f842e59,
                0xffef8375d9ebcaca,
                0x6c160deed2f54c98,
                0x8920ad648fc30a3f,
                0xdb032c0ba7539731,
                0xeb3a475a3e749a3d,
            ]
        );
    }

    #[test]
    fn xoshiro_golden_seed42() {
        let mut r = Xoshiro256StarStar::seed_from_u64(42);
        let got: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x15780b2e0c2ec716,
                0x6104d9866d113a7e,
                0xae17533239e499a1,
                0xecb8ad4703b360a1,
                0xfde6dc7fe2ec5e64,
                0xc50da53101795238,
                0xb82154855a65ddb2,
                0xd99a2743ebe60087,
                0xc2e96e726e97647e,
                0x9556615f775fbc3d,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256StarStar::seed_from_u64(123);
        let mut b = Xoshiro256StarStar::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::seed_from_u64(124);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..2000 {
            let v = r.i64_range(-50, 50);
            assert!((-50..50).contains(&v));
            let w = r.i64_range_incl(1, 6);
            assert!((1..=6).contains(&w));
            let u = r.usize_below(7);
            assert!(u < 7);
            let f = r.f64_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let unit = r.unit_f64();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn i64_range_incl_full_domain() {
        let mut r = Xoshiro256StarStar::seed_from_u64(10);
        // Must not overflow or hang on the maximal range.
        for _ in 0..10 {
            let _ = r.i64_range_incl(i64::MIN, i64::MAX);
        }
        assert_eq!(r.i64_range_incl(5, 5), 5);
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        // Range-uniformity smoke test: 80_000 draws into 8 bins; each
        // bin expects 10_000, allow ±5% (xoshiro is far better than
        // this, the bound only catches gross bias such as a broken
        // rejection zone).
        let mut r = Xoshiro256StarStar::seed_from_u64(2024);
        let mut bins = [0u32; 8];
        for _ in 0..80_000 {
            bins[r.u64_below(8) as usize] += 1;
        }
        for (i, &b) in bins.iter().enumerate() {
            assert!((9_500..=10_500).contains(&b), "bin {i} count {b} out of tolerance");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::seed_from_u64(77);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never stays sorted");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256StarStar::seed_from_u64(31);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev {}", var.sqrt());
    }
}
