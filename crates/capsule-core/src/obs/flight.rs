//! The always-on flight recorder: a fixed-size ring buffer of compact,
//! timestamped lifecycle events (enqueue, dispatch, retry, preempt,
//! backend state flips, ...) that both servers write on every job,
//! whether or not anyone is watching.
//!
//! The recorder is the first tier of the observability stack (see
//! `docs/OBSERVABILITY.md`): it answers "what happened in the last few
//! thousand decisions" after the fact, from a `dump` request or a
//! panic/watchdog hook, without requiring a trace id up front. Records
//! are deliberately tiny — a sequence number, a microsecond offset from
//! the recorder's epoch, an event kind, an optional job cache key, an
//! optional backend index, and a static outcome label — so recording is
//! one short mutex hold and no allocation.
//!
//! Capacity 0 disables the recorder entirely; `record` then returns
//! before taking the lock, which is what the `bench_serve --flight-off`
//! overhead comparison measures against.

use std::sync::Mutex;
use std::time::Instant;

use crate::output::Json;

/// What happened. One variant per decision point the servers record;
/// the wire spelling ([`FlightKind::as_str`]) is part of the
/// `capsule-dump/1` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A job was accepted and queued.
    Enqueue,
    /// A worker picked a job up off the queue.
    Dequeue,
    /// A job reached a terminal outcome (see the record's `outcome`).
    Complete,
    /// A `run` was answered straight from the result cache.
    CacheHit,
    /// A request was refused (queue full, pending cap, bad resume).
    Deny,
    /// The fleet re-dispatched a job after a backend fault.
    Retry,
    /// A job was preempted (checkpointed and parked).
    Preempt,
    /// A job resumed from a checkpoint (includes fleet migration).
    Resume,
    /// The fleet handed a job to a backend.
    Dispatch,
    /// A backend transitioned dead → alive.
    BackendUp,
    /// A backend transitioned alive → dead.
    BackendDown,
}

impl FlightKind {
    /// The `capsule-dump/1` spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Enqueue => "enqueue",
            FlightKind::Dequeue => "dequeue",
            FlightKind::Complete => "complete",
            FlightKind::CacheHit => "cache-hit",
            FlightKind::Deny => "deny",
            FlightKind::Retry => "retry",
            FlightKind::Preempt => "preempt",
            FlightKind::Resume => "resume",
            FlightKind::Dispatch => "dispatch",
            FlightKind::BackendUp => "backend-up",
            FlightKind::BackendDown => "backend-down",
        }
    }
}

/// One recorded event. `key` is the job's canonical cache key (the same
/// 64-bit FNV the `run` response reports as hex), `backend` the fleet's
/// backend index, `outcome` a static label ("" when the kind needs
/// none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number, from 0, never reused. `seq` gaps in a
    /// snapshot are events the ring has already overwritten.
    pub seq: u64,
    /// Microseconds since the recorder's epoch (its creation).
    pub at_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The job's cache key, when the event concerns a job.
    pub key: Option<u64>,
    /// The backend index, when the event concerns a backend.
    pub backend: Option<u32>,
    /// Static outcome/detail label ("" for none).
    pub outcome: &'static str,
}

impl FlightEvent {
    /// Renders the event as its `capsule-dump/1` object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("seq", self.seq)
            .push("at_us", self.at_us)
            .push("kind", self.kind.as_str())
            .push("cache_key", self.key.map_or(Json::Null, |k| Json::Str(format!("{k:016x}"))))
            .push("backend", self.backend.map_or(Json::Null, |b| Json::UInt(b as u64)));
        if !self.outcome.is_empty() {
            o.push("outcome", self.outcome);
        }
        o
    }
}

#[derive(Debug)]
struct Ring {
    buf: Vec<FlightEvent>,
    /// Next overwrite position once the buffer is full.
    next: usize,
    /// Total events ever recorded.
    seq: u64,
}

/// A point-in-time copy of the ring, oldest event first.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// The recorder's capacity.
    pub capacity: usize,
    /// Total events recorded over the recorder's lifetime.
    pub recorded: u64,
    /// Retained events in sequence order.
    pub events: Vec<FlightEvent>,
}

impl FlightSnapshot {
    /// Events that have been overwritten by the ring.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Renders the snapshot as its `capsule-dump/1` object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("capacity", self.capacity as u64)
            .push("recorded", self.recorded)
            .push("overwritten", self.overwritten())
            .push("events", Json::Array(self.events.iter().map(FlightEvent::to_json).collect()));
        o
    }
}

/// The recorder itself: a mutex around a fixed ring. Writers pay one
/// short uncontended lock per event; with capacity 0 they pay a single
/// branch.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` events (0 disables it).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            cap,
            inner: Mutex::new(Ring { buf: Vec::new(), next: 0, seq: 0 }),
        }
    }

    /// Whether events are being retained at all.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events recorded so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        if self.cap == 0 {
            return 0;
        }
        self.lock().seq
    }

    /// Records one event, timestamped "now". A no-op (before the lock)
    /// when the recorder is disabled.
    pub fn record(
        &self,
        kind: FlightKind,
        key: Option<u64>,
        backend: Option<u32>,
        outcome: &'static str,
    ) {
        if self.cap == 0 {
            return;
        }
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.lock();
        let event = FlightEvent { seq: ring.seq, at_us, kind, key, backend, outcome };
        ring.seq += 1;
        if ring.buf.len() < self.cap {
            ring.buf.push(event);
        } else {
            let at = ring.next;
            ring.buf[at] = event;
            ring.next = (at + 1) % self.cap;
        }
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> FlightSnapshot {
        if self.cap == 0 {
            return FlightSnapshot { capacity: 0, recorded: 0, events: Vec::new() };
        }
        let ring = self.lock();
        let mut events = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() < self.cap {
            events.extend_from_slice(&ring.buf);
        } else {
            events.extend_from_slice(&ring.buf[ring.next..]);
            events.extend_from_slice(&ring.buf[..ring.next]);
        }
        FlightSnapshot { capacity: self.cap, recorded: ring.seq, events }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_the_newest_events_in_seq_order() {
        let r = FlightRecorder::new(3);
        assert!(r.enabled());
        for i in 0..5u64 {
            let kind = if i % 2 == 0 { FlightKind::Enqueue } else { FlightKind::Dequeue };
            r.record(kind, Some(i), None, "");
        }
        let snap = r.snapshot();
        assert_eq!(snap.capacity, 3);
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.overwritten(), 2);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let keys: Vec<Option<u64>> = snap.events.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![Some(2), Some(3), Some(4)]);
        // Timestamps are monotone within a snapshot.
        assert!(snap.events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn a_partially_filled_ring_snapshots_without_rotation() {
        let r = FlightRecorder::new(8);
        r.record(FlightKind::Enqueue, Some(7), None, "");
        r.record(FlightKind::Complete, Some(7), None, "completed");
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 2);
        assert_eq!(snap.overwritten(), 0);
        assert_eq!(snap.events[0].kind, FlightKind::Enqueue);
        assert_eq!(snap.events[1].outcome, "completed");
    }

    #[test]
    fn capacity_zero_disables_recording() {
        let r = FlightRecorder::new(0);
        assert!(!r.enabled());
        r.record(FlightKind::Enqueue, None, None, "");
        assert_eq!(r.recorded(), 0);
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(
            snap.to_json().to_string_compact(),
            r#"{"capacity":0,"recorded":0,"overwritten":0,"events":[]}"#
        );
    }

    #[test]
    fn events_render_their_dump_schema() {
        let e = FlightEvent {
            seq: 9,
            at_us: 120,
            kind: FlightKind::Retry,
            key: Some(0xb517_4289_4a5f_f828),
            backend: Some(1),
            outcome: "backend-error",
        };
        assert_eq!(
            e.to_json().to_string_compact(),
            r#"{"seq":9,"at_us":120,"kind":"retry","cache_key":"b51742894a5ff828","backend":1,"outcome":"backend-error"}"#
        );
        // No outcome → the field is omitted; no key/backend → null.
        let bare = FlightEvent {
            seq: 0,
            at_us: 1,
            kind: FlightKind::Enqueue,
            key: None,
            backend: None,
            outcome: "",
        };
        assert_eq!(
            bare.to_json().to_string_compact(),
            r#"{"seq":0,"at_us":1,"kind":"enqueue","cache_key":null,"backend":null}"#
        );
    }

    #[test]
    fn all_kinds_have_distinct_wire_spellings() {
        let kinds = [
            FlightKind::Enqueue,
            FlightKind::Dequeue,
            FlightKind::Complete,
            FlightKind::CacheHit,
            FlightKind::Deny,
            FlightKind::Retry,
            FlightKind::Preempt,
            FlightKind::Resume,
            FlightKind::Dispatch,
            FlightKind::BackendUp,
            FlightKind::BackendDown,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
