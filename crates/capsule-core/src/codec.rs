//! A minimal little-endian byte codec for checkpoint blobs.
//!
//! The checkpoint subsystem (docs/CHECKPOINT.md) serializes machine and
//! outcome state into self-describing binary sections. This module is the
//! shared vocabulary: a [`Writer`] appending fixed-width little-endian
//! primitives to a growable buffer, a [`Reader`] consuming them with
//! checked bounds (truncated or ill-formed input surfaces as a
//! [`CodecError`], never a panic), and the FNV-1a 64 hash used to
//! fingerprint configurations and programs in snapshot headers.
//!
//! The encoding is deliberately dumb: no varints, no alignment, no
//! endianness negotiation. Determinism and auditability beat density —
//! a snapshot must hash identically across hosts and releases of the
//! same format version.

use std::fmt;

/// Decoding failures. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested primitive.
    Truncated,
    /// A value was structurally invalid (bad tag, oversized length, ...).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian primitives to an owned byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer into its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (NaN payloads and
    /// signed zeros survive the round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes `Some(v)`/`None` as a one-byte tag plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (headers, magic numbers).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Consumes primitives written by [`Writer`], with checked bounds.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (rejecting anything but 0 or 1).
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `usize` (written as `u64`), rejecting values that do not
    /// fit the host or exceed the remaining input when used as a length.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or overflow.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads an optional `u64` written by [`Writer::opt_u64`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a bad tag.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }

    /// Reads a length-prefixed byte string. The length is validated
    /// against the remaining input before any allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the prefix exceeds what is left.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Invalid("utf-8"))
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

/// 64-bit FNV-1a over `bytes` — the hash behind snapshot config/program
/// fingerprints and the serve-layer `cache_key`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a 64: feed byte slices and words, read the digest out.
/// Used where hashing a structure incrementally avoids materializing its
/// canonical byte form (e.g. the per-build program fingerprint).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: Self::OFFSET }
    }

    /// Feeds a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u64` as its 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.usize(123);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.bytes(b"hello");
        w.str("caps\u{00fc}le");
        w.raw(b"XY");
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.usize().unwrap(), 123);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "caps\u{00fc}le");
        assert_eq!(r.raw(2).unwrap(), b"XY");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        // A lying length prefix is caught before allocation.
        let mut w = Writer::new();
        w.usize(1 << 40);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).bytes(), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(Reader::new(&[2]).bool(), Err(CodecError::Invalid("bool")));
        assert_eq!(Reader::new(&[7]).opt_u64(), Err(CodecError::Invalid("option tag")));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).str(), Err(CodecError::Invalid("utf-8")));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        // Streaming agrees with one-shot.
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
