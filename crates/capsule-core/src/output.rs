//! Values emitted on a run's output channel (`out`/`outf`), and a
//! minimal hand-rolled JSON value/writer/parser used for machine-readable
//! bench reports and the `capsule-serve/1` wire protocol (the workspace
//! is dependency-free by design — see DESIGN.md §5 — so there is no
//! serde here).

/// A value emitted by a simulated program or native worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutValue {
    /// From `out` (integer channel).
    Int(i64),
    /// From `outf` (floating-point channel).
    Float(f64),
}

impl OutValue {
    /// The integer, if this is an [`OutValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OutValue::Int(v) => Some(*v),
            OutValue::Float(_) => None,
        }
    }

    /// The float, if this is an [`OutValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            OutValue::Float(v) => Some(*v),
            OutValue::Int(_) => None,
        }
    }
}

/// A JSON value with insertion-ordered object keys.
///
/// Rendering is deterministic: keys appear in insertion order, floats
/// use Rust's shortest-roundtrip formatting (always with a `.0` or
/// exponent so they read back as floats), and non-finite floats render
/// as `null` (JSON has no NaN/Inf).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; not routed through f64).
    Int(i64),
    /// An unsigned integer (cycle counts exceed i64 range in theory).
    UInt(u64),
    /// A double; NaN/Inf render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an [`Json::Object`].
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(entries) => entries.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object; `None` on missing key or non-object.
    /// The first entry wins if a key was pushed twice.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` ([`Json::Int`], or a [`Json::UInt`] that fits).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64` ([`Json::UInt`], or a non-negative [`Json::Int`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (floats, and integers converted losslessly
    /// enough for reporting).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is a [`Json::Object`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// The parser accepts exactly the JSON grammar (RFC 8259): one value,
    /// optionally surrounded by whitespace; no trailing garbage, comments,
    /// or trailing commas. Numbers without a fraction or exponent parse to
    /// [`Json::Int`] when they fit `i64`, to [`Json::UInt`] when they only
    /// fit `u64`, and to [`Json::Float`] otherwise; this makes `parse` an
    /// exact inverse of [`Json::to_string_compact`] for canonically-typed
    /// values (see the round-trip test).
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with the byte offset and 1-based line/column of
    /// the first offending character.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos < p.input.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders to a compact JSON string (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders to a pretty JSON string with 2-space indentation and a
    /// trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => render_f64(out, *v),
            Json::Str(s) => render_str(out, s),
            Json::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                render_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                    let (k, v) = &entries[i];
                    render_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

/// A parse failure, with the exact position of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (in bytes) of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at line {}, column {} (byte {}): {}",
            self.line, self.col, self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = self.pos - consumed.rfind('\n').map_or(0, |i| i + 1) + 1;
        JsonParseError { offset: self.pos, line, col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.input[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected '\"' to start object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.input[self.pos..];
            let Some(c) = rest.chars().next() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                c if (c as u32) < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                c => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = match self.peek() {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require the low half.
                    if !self.input[self.pos..].starts_with("\\u") {
                        return Err(self.err("lone high surrogate in \\u escape"));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
                return char::from_u32(hi)
                    .ok_or_else(|| self.err("lone low surrogate in \\u escape"));
            }
            _ => return Err(self.err("invalid escape sequence")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex digit in \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit in number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if bytes[start] != b'-' {
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(Json::UInt(v));
                }
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| {
            self.pos = start;
            self.err("number out of representable range")
        })
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn render_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    // `{}` on f64 prints integral values without a decimal point; keep
    // the float-ness visible so readers don't reparse as an integer.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(OutValue::Int(3).as_int(), Some(3));
        assert_eq!(OutValue::Int(3).as_float(), None);
        assert_eq!(OutValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(OutValue::Float(1.5).as_int(), None);
    }

    #[test]
    fn json_compact_rendering() {
        let mut o = Json::object();
        o.push("name", "fig3")
            .push("ok", true)
            .push("cycles", 12345u64)
            .push("delta", -2i64)
            .push("ratio", 1.5)
            .push("items", vec![1i64, 2, 3])
            .push("nothing", Json::Null);
        assert_eq!(
            o.to_string_compact(),
            r#"{"name":"fig3","ok":true,"cycles":12345,"delta":-2,"ratio":1.5,"items":[1,2,3],"nothing":null}"#
        );
    }

    #[test]
    fn json_pretty_rendering() {
        let mut o = Json::object();
        o.push("a", 1i64).push("b", Json::Array(vec![Json::Int(2)]));
        assert_eq!(o.to_string_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.to_string_compact(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn json_float_formatting_is_unambiguous() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Float(0.1).to_string_compact(), "0.1");
        // `{}` on f64 never uses exponent notation; the `.0` marker is
        // still appended.
        assert_eq!(Json::Float(1e30).to_string_compact(), "1000000000000000000000000000000.0");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn json_empty_containers() {
        assert_eq!(Json::Array(vec![]).to_string_compact(), "[]");
        assert_eq!(Json::object().to_string_compact(), "{}");
        assert_eq!(Json::object().to_string_pretty(), "{}\n");
    }

    #[test]
    fn accessors_on_parsed_values() {
        let j = Json::parse(r#"{"a":1,"b":"x","c":[true,null],"d":2.5,"e":18446744073709551615}"#)
            .unwrap();
        assert_eq!(j.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("c").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(j.get("c").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert_eq!(j.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(j.get("e").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(j.get("e").and_then(Json::as_i64), None);
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
        assert_eq!(j.as_object().map(<[(String, Json)]>::len), Some(5));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        // One past i64::MAX lands in UInt; huge integers fall back to Float.
        assert_eq!(Json::parse("9223372036854775808").unwrap(), Json::UInt(1 << 63));
        assert_eq!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Float(1.8446744073709552e19)
        );
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Float(-1500.0));
        assert_eq!(Json::parse("1E-2").unwrap(), Json::Float(0.01));
    }

    #[test]
    fn parse_strings_and_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\te\u0001""#).unwrap(),
            Json::Str("a\"b\\c\nd\te\u{1}".to_string())
        );
        assert_eq!(Json::parse(r#""\/\b\f""#).unwrap(), Json::Str("/\u{8}\u{c}".to_string()));
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".to_string()));
        assert_eq!(Json::parse("\"déjà vu\"").unwrap(), Json::Str("déjà vu".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_inputs_with_positions() {
        // (input, expected offset of the error)
        let cases: &[(&str, usize)] = &[
            ("", 0),
            ("  ", 2),
            ("{", 1),
            ("}", 0),
            ("[1,]", 3),
            ("[1 2]", 3),
            ("{\"a\":}", 5),
            ("{\"a\" 1}", 5),
            ("{a:1}", 1),
            ("{\"a\":1,}", 7),
            ("nul", 0),
            ("truee", 4),
            ("\"abc", 4),
            ("\"\\q\"", 2),
            ("\"\\u12g4\"", 3),
            ("\"\\ud800x\"", 7),
            ("01", 1),
            ("-", 1),
            ("1.", 2),
            ("1e", 2),
            ("1.5.2", 3),
            ("[1] []", 4),
            ("\u{1}", 0),
        ];
        for &(input, offset) in cases {
            let e = Json::parse(input).expect_err(input);
            assert_eq!(e.offset, offset, "offset for {input:?}: {e}");
        }
    }

    #[test]
    fn parse_error_reports_line_and_column() {
        let e = Json::parse("{\n  \"a\": 1,\n  \"b\": nope\n}").unwrap_err();
        assert_eq!((e.line, e.col), (3, 8));
        assert!(e.to_string().contains("line 3, column 8"));
    }

    /// Deterministic generator of canonically-typed Json values: every
    /// integer in i64 range is Int (never UInt), UInt is only used above
    /// i64::MAX, and floats are finite — exactly the forms the writer
    /// renders distinguishably, so `parse` inverts `to_string_compact`.
    fn arbitrary_json(rng: &mut crate::rng::Xoshiro256StarStar, depth: usize) -> Json {
        use crate::rng::Rng as _;
        let pick = if depth == 0 { rng.usize_below(6) } else { rng.usize_below(8) };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.chance(0.5)),
            2 => Json::Int(rng.next_u64() as i64),
            3 => Json::UInt((rng.next_u64() >> 1) | (1 << 63)), // always > i64::MAX
            4 => {
                // Shortest-roundtrip formatting + parse is lossless for
                // every finite double, including subnormals.
                let v = f64::from_bits(rng.next_u64());
                Json::Float(if v.is_finite() { v } else { rng.f64_range(-1e9, 1e9) })
            }
            5 => {
                let len = rng.usize_below(12);
                let s: String = (0..len)
                    .map(|_| char::from_u32(rng.next_u32() % 0xD800).expect("below surrogates"))
                    .collect();
                Json::Str(s)
            }
            6 => {
                let len = rng.usize_below(4);
                Json::Array((0..len).map(|_| arbitrary_json(rng, depth - 1)).collect())
            }
            _ => {
                let len = rng.usize_below(4);
                let mut o = Json::object();
                for i in 0..len {
                    o.push(&format!("k{i}\u{7f}\"{}", i * 3), arbitrary_json(rng, depth - 1));
                }
                o
            }
        }
    }

    #[test]
    fn parse_roundtrips_rendered_values() {
        use crate::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xCA9501E);
        for i in 0..500 {
            let j = arbitrary_json(&mut rng, 3);
            let compact = j.to_string_compact();
            let back = Json::parse(&compact).unwrap_or_else(|e| panic!("case {i}: {e}\n{compact}"));
            assert_eq!(back, j, "case {i}: {compact}");
            // Pretty rendering parses back to the same value too.
            let pretty = j.to_string_pretty();
            assert_eq!(Json::parse(&pretty).expect("pretty parses"), j, "case {i} (pretty)");
        }
    }
}
