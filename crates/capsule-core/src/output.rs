//! Values emitted on a run's output channel (`out`/`outf`).

/// A value emitted by a simulated program or native worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutValue {
    /// From `out` (integer channel).
    Int(i64),
    /// From `outf` (floating-point channel).
    Float(f64),
}

impl OutValue {
    /// The integer, if this is an [`OutValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OutValue::Int(v) => Some(*v),
            OutValue::Float(_) => None,
        }
    }

    /// The float, if this is an [`OutValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            OutValue::Float(v) => Some(*v),
            OutValue::Int(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(OutValue::Int(3).as_int(), Some(3));
        assert_eq!(OutValue::Int(3).as_float(), None);
        assert_eq!(OutValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(OutValue::Float(1.5).as_int(), None);
    }
}
