//! Values emitted on a run's output channel (`out`/`outf`), and a
//! minimal hand-rolled JSON value/writer used for machine-readable
//! bench reports (the workspace is dependency-free by design — see
//! DESIGN.md §5 — so there is no serde here).

/// A value emitted by a simulated program or native worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutValue {
    /// From `out` (integer channel).
    Int(i64),
    /// From `outf` (floating-point channel).
    Float(f64),
}

impl OutValue {
    /// The integer, if this is an [`OutValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OutValue::Int(v) => Some(*v),
            OutValue::Float(_) => None,
        }
    }

    /// The float, if this is an [`OutValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            OutValue::Float(v) => Some(*v),
            OutValue::Int(_) => None,
        }
    }
}

/// A JSON value with insertion-ordered object keys.
///
/// Rendering is deterministic: keys appear in insertion order, floats
/// use Rust's shortest-roundtrip formatting (always with a `.0` or
/// exponent so they read back as floats), and non-finite floats render
/// as `null` (JSON has no NaN/Inf).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; not routed through f64).
    Int(i64),
    /// An unsigned integer (cycle counts exceed i64 range in theory).
    UInt(u64),
    /// A double; NaN/Inf render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an [`Json::Object`].
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(entries) => entries.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Renders to a compact JSON string (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders to a pretty JSON string with 2-space indentation and a
    /// trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => render_f64(out, *v),
            Json::Str(s) => render_str(out, s),
            Json::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                render_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                    let (k, v) = &entries[i];
                    render_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn render_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    // `{}` on f64 prints integral values without a decimal point; keep
    // the float-ness visible so readers don't reparse as an integer.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(OutValue::Int(3).as_int(), Some(3));
        assert_eq!(OutValue::Int(3).as_float(), None);
        assert_eq!(OutValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(OutValue::Float(1.5).as_int(), None);
    }

    #[test]
    fn json_compact_rendering() {
        let mut o = Json::object();
        o.push("name", "fig3")
            .push("ok", true)
            .push("cycles", 12345u64)
            .push("delta", -2i64)
            .push("ratio", 1.5)
            .push("items", vec![1i64, 2, 3])
            .push("nothing", Json::Null);
        assert_eq!(
            o.to_string_compact(),
            r#"{"name":"fig3","ok":true,"cycles":12345,"delta":-2,"ratio":1.5,"items":[1,2,3],"nothing":null}"#
        );
    }

    #[test]
    fn json_pretty_rendering() {
        let mut o = Json::object();
        o.push("a", 1i64).push("b", Json::Array(vec![Json::Int(2)]));
        assert_eq!(
            o.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.to_string_compact(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn json_float_formatting_is_unambiguous() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Float(0.1).to_string_compact(), "0.1");
        // `{}` on f64 never uses exponent notation; the `.0` marker is
        // still appended.
        assert_eq!(
            Json::Float(1e30).to_string_compact(),
            "1000000000000000000000000000000.0"
        );
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn json_empty_containers() {
        assert_eq!(Json::Array(vec![]).to_string_compact(), "[]");
        assert_eq!(Json::object().to_string_compact(), "{}");
        assert_eq!(Json::object().to_string_pretty(), "{}\n");
    }
}
