//! Run statistics: counters, componentized-section tracking, the
//! division genealogy used to regenerate Figure 6 and Table 3, and a
//! power-of-two latency histogram used by serving-layer telemetry.

use std::fmt;

use crate::codec::{CodecError, Reader, Writer};
use crate::ids::WorkerId;
use crate::output::Json;

/// Aggregate counters of one simulated (or native) run.
///
/// All counts are totals across threads. The helpers at the bottom compute
/// the derived quantities the paper reports (IPC, grant rate, instructions
/// per division — Table 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions dispatched into the window.
    pub dispatched: u64,
    /// Instructions committed (architecturally retired).
    pub committed: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub branch_mispredicts: u64,
    /// `nthr` division requests observed.
    pub divisions_requested: u64,
    /// Requests granted to a free physical context.
    pub divisions_granted_context: u64,
    /// Requests granted by parking the child on the context stack.
    pub divisions_granted_stack: u64,
    /// Requests denied for lack of resources.
    pub divisions_denied_no_resource: u64,
    /// Requests denied by the death-rate throttle.
    pub divisions_denied_throttled: u64,
    /// Requests denied because division is disabled on this machine.
    pub divisions_denied_disabled: u64,
    /// Worker deaths (committed `kthr`).
    pub deaths: u64,
    /// Threads swapped out to the context stack.
    pub swaps_out: u64,
    /// Threads swapped back in from the context stack.
    pub swaps_in: u64,
    /// Successful `mlock` acquisitions.
    pub lock_acquires: u64,
    /// `mlock` attempts that found the lock held and stalled the thread.
    pub lock_stalls: u64,
    /// Total cycles threads spent stalled on locks.
    pub lock_stall_cycles: u64,
    /// Cycle-sum of active (fetch-eligible) contexts; divide by `cycles`
    /// for mean context occupancy.
    pub active_context_cycles: u64,
    /// Largest number of live workers observed simultaneously.
    pub max_live_workers: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total divisions granted (to a context or to the stack).
    pub fn divisions_granted(&self) -> u64 {
        self.divisions_granted_context + self.divisions_granted_stack
    }

    /// Fraction of requests granted, in [0, 1]; 0 when nothing was requested.
    pub fn grant_rate(&self) -> f64 {
        if self.divisions_requested == 0 {
            0.0
        } else {
            self.divisions_granted() as f64 / self.divisions_requested as f64
        }
    }

    /// Committed instructions per granted division (Table 3's
    /// "# insts / division allowed"); `None` when no division was granted.
    pub fn insts_per_division(&self) -> Option<f64> {
        let g = self.divisions_granted();
        (g > 0).then(|| self.committed as f64 / g as f64)
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate in [0, 1].
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean number of active contexts per cycle.
    pub fn mean_active_contexts(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_context_cycles as f64 / self.cycles as f64
        }
    }

    /// Serializes every counter, in declaration order, for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        for v in [
            self.cycles,
            self.fetched,
            self.dispatched,
            self.committed,
            self.branches,
            self.branch_mispredicts,
            self.divisions_requested,
            self.divisions_granted_context,
            self.divisions_granted_stack,
            self.divisions_denied_no_resource,
            self.divisions_denied_throttled,
            self.divisions_denied_disabled,
            self.deaths,
            self.swaps_out,
            self.swaps_in,
            self.lock_acquires,
            self.lock_stalls,
            self.lock_stall_cycles,
            self.active_context_cycles,
            self.max_live_workers,
        ] {
            w.u64(v);
        }
    }

    /// Inverse of [`SimStats::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated input.
    pub fn decode(r: &mut Reader<'_>) -> Result<SimStats, CodecError> {
        Ok(SimStats {
            cycles: r.u64()?,
            fetched: r.u64()?,
            dispatched: r.u64()?,
            committed: r.u64()?,
            branches: r.u64()?,
            branch_mispredicts: r.u64()?,
            divisions_requested: r.u64()?,
            divisions_granted_context: r.u64()?,
            divisions_granted_stack: r.u64()?,
            divisions_denied_no_resource: r.u64()?,
            divisions_denied_throttled: r.u64()?,
            divisions_denied_disabled: r.u64()?,
            deaths: r.u64()?,
            swaps_out: r.u64()?,
            swaps_in: r.u64()?,
            lock_acquires: r.u64()?,
            lock_stalls: r.u64()?,
            lock_stall_cycles: r.u64()?,
            active_context_cycles: r.u64()?,
            max_live_workers: r.u64()?,
        })
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles                {:>12}", self.cycles)?;
        writeln!(f, "committed insts       {:>12}", self.committed)?;
        writeln!(f, "IPC                   {:>12.3}", self.ipc())?;
        writeln!(
            f,
            "branches (mispred)    {:>12} ({:.2}%)",
            self.branches,
            100.0 * self.mispredict_rate()
        )?;
        writeln!(
            f,
            "divisions req/granted {:>12} / {} ({:.1}%)",
            self.divisions_requested,
            self.divisions_granted(),
            100.0 * self.grant_rate()
        )?;
        writeln!(f, "deaths                {:>12}", self.deaths)?;
        writeln!(f, "swaps out/in          {:>12} / {}", self.swaps_out, self.swaps_in)?;
        writeln!(f, "lock acquires/stalls  {:>12} / {}", self.lock_acquires, self.lock_stalls)?;
        write!(f, "mean active contexts  {:>12.2}", self.mean_active_contexts())
    }
}

/// Tracks the cycles during which "componentized sections" are active.
///
/// Programs bracket regions with `mark.start id` / `mark.end id`
/// instructions (our analog of the paper's instrumentation that measures
/// the share of execution time spent in componentized subgraphs, Table 2
/// and Figure 8). A section is *active* while at least one thread is inside
/// it; nesting and concurrent entries are reference-counted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectionTracker {
    sections: Vec<SectionState>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SectionState {
    active: u32,
    opened_at: u64,
    total_cycles: u64,
    entries: u64,
}

impl SectionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, id: u16) -> &mut SectionState {
        let idx = id as usize;
        if self.sections.len() <= idx {
            self.sections.resize_with(idx + 1, SectionState::default);
        }
        &mut self.sections[idx]
    }

    /// A thread entered section `id` at `cycle`.
    pub fn enter(&mut self, id: u16, cycle: u64) {
        let s = self.slot(id);
        if s.active == 0 {
            s.opened_at = cycle;
        }
        s.active += 1;
        s.entries += 1;
    }

    /// A thread left section `id` at `cycle`.
    ///
    /// Unbalanced leaves (without a matching enter) are ignored rather than
    /// corrupting the accounting.
    pub fn leave(&mut self, id: u16, cycle: u64) {
        let s = self.slot(id);
        if s.active == 0 {
            return;
        }
        s.active -= 1;
        if s.active == 0 {
            s.total_cycles += cycle.saturating_sub(s.opened_at);
        }
    }

    /// Closes any still-open sections at end-of-run `cycle`.
    pub fn finish(&mut self, cycle: u64) {
        for s in &mut self.sections {
            if s.active > 0 {
                s.total_cycles += cycle.saturating_sub(s.opened_at);
                s.active = 0;
            }
        }
    }

    /// Active cycles accumulated by section `id`.
    pub fn section_cycles(&self, id: u16) -> u64 {
        self.sections.get(id as usize).map_or(0, |s| s.total_cycles)
    }

    /// Number of times section `id` was entered.
    pub fn section_entries(&self, id: u16) -> u64 {
        self.sections.get(id as usize).map_or(0, |s| s.entries)
    }

    /// Fraction of `total_cycles` spent inside section `id`.
    pub fn section_fraction(&self, id: u16, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.section_cycles(id) as f64 / total_cycles as f64
        }
    }

    /// Serializes the tracker (including still-open sections) for
    /// checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.sections.len());
        for s in &self.sections {
            w.u32(s.active);
            w.u64(s.opened_at);
            w.u64(s.total_cycles);
            w.u64(s.entries);
        }
    }

    /// Inverse of [`SectionTracker::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<SectionTracker, CodecError> {
        let n = r.usize()?;
        if n > u16::MAX as usize + 1 {
            return Err(CodecError::Invalid("section count"));
        }
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            sections.push(SectionState {
                active: r.u32()?,
                opened_at: r.u64()?,
                total_cycles: r.u64()?,
                entries: r.u64()?,
            });
        }
        Ok(SectionTracker { sections })
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `k` (k ≥ 1) holds samples in `[2^(k-1), 2^k - 1]`; bucket 0
/// holds exact zeros. 65 buckets cover the full `u64` range, so
/// recording never saturates or loses a sample. Exact count/sum/min/max
/// are tracked alongside the buckets. This is the latency-telemetry
/// primitive behind `capsule-serve`'s `stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (inclusive) of the bucket holding the q-quantile
    /// (`q` in [0, 1]), i.e. a conservative estimate of e.g. the p99.
    /// `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(k).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other` into `self`, as if every sample recorded into
    /// `other` had been recorded here too. Count, sum (saturating), min
    /// and max stay exact; bucket counts add element-wise, so merged
    /// quantile bounds are as tight as single-histogram ones.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from its [`Histogram::to_json`] rendering —
    /// the inverse used when aggregating remote telemetry (the fleet
    /// coordinator merges every backend's latency histograms this way).
    ///
    /// Returns `None` when `json` is not a well-formed rendering: missing
    /// fields, a bucket `lo` that is not a power-of-two bound, or bucket
    /// counts that do not add up to `count`.
    pub fn from_json(json: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = json.get("count")?.as_u64()?;
        h.sum = json.get("sum")?.as_u64()?;
        h.min = match json.get("min")? {
            Json::Null => u64::MAX,
            v => v.as_u64()?,
        };
        h.max = match json.get("max")? {
            Json::Null => 0,
            v => v.as_u64()?,
        };
        let mut total = 0u64;
        for row in json.get("buckets")?.as_array()? {
            let lo = row.get("lo")?.as_u64()?;
            let count = row.get("count")?.as_u64()?;
            let k = if lo == 0 {
                0
            } else if lo.is_power_of_two() {
                lo.trailing_zeros() as usize + 1
            } else {
                return None;
            };
            h.buckets[k] += count;
            total += count;
        }
        if total != h.count || (h.count == 0) != (h.min == u64::MAX && h.max == 0) {
            return None;
        }
        Some(h)
    }

    /// The non-empty buckets as `(lo, hi, count)` rows in increasing
    /// order — the iteration behind [`Histogram::to_json`] and the
    /// cumulative-bucket expansion of
    /// [`crate::obs::MetricsRegistry::histogram`].
    pub fn bucket_rows(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (bucket_lo(k), bucket_hi(k), c))
    }

    /// The histogram as a JSON object: exact summary fields plus the
    /// non-empty buckets as `{lo, hi, count}` rows in increasing order.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("count", self.count)
            .push("sum", self.sum)
            .push("min", self.min().map_or(Json::Null, Json::UInt))
            .push("max", self.max().map_or(Json::Null, Json::UInt))
            .push("mean", self.mean());
        let mut rows = Vec::new();
        for (lo, hi, c) in self.bucket_rows() {
            let mut row = Json::object();
            row.push("lo", lo).push("hi", hi).push("count", c);
            rows.push(row);
        }
        o.push("buckets", Json::Array(rows));
        o
    }
}

/// Inclusive lower bound of bucket `k`.
fn bucket_lo(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Inclusive upper bound of bucket `k`.
fn bucket_hi(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Where a granted division placed the child worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BirthPlace {
    /// Child seized a free physical context.
    Context,
    /// Child was born suspended on the context stack.
    Stack,
    /// Loader-created thread (static parallel program entry).
    Loader,
}

/// One worker in the division genealogy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivisionNode {
    /// This worker.
    pub id: WorkerId,
    /// Parent worker; `None` for loader-created roots.
    pub parent: Option<WorkerId>,
    /// Cycle of birth (grant of the creating `nthr`, or 0 for roots).
    pub birth_cycle: u64,
    /// Cycle of death (committed `kthr`), if the worker has died.
    pub death_cycle: Option<u64>,
    /// Where the worker was placed at birth.
    pub place: BirthPlace,
}

/// The genealogy of worker divisions — the structure visualized by
/// Figure 6 of the paper ("Irregular divisions in QuickSort").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DivisionTree {
    nodes: Vec<DivisionNode>,
}

impl DivisionTree {
    /// Creates an empty genealogy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a birth; returns the new worker's id.
    pub fn record_birth(
        &mut self,
        parent: Option<WorkerId>,
        cycle: u64,
        place: BirthPlace,
    ) -> WorkerId {
        let id = WorkerId(self.nodes.len() as u32);
        if let Some(p) = parent {
            debug_assert!(p.index() < self.nodes.len(), "parent must exist");
        }
        self.nodes.push(DivisionNode { id, parent, birth_cycle: cycle, death_cycle: None, place });
        id
    }

    /// Records the death of `id` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never born (index out of range).
    pub fn record_death(&mut self, id: WorkerId, cycle: u64) {
        self.nodes[id.index()].death_cycle = Some(cycle);
    }

    /// All nodes in birth order.
    pub fn nodes(&self) -> &[DivisionNode] {
        &self.nodes
    }

    /// Number of workers ever born.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no worker was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of workers alive at `cycle` (born, not yet dead).
    pub fn live_at(&self, cycle: u64) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.birth_cycle <= cycle && n.death_cycle.is_none_or(|d| d > cycle))
            .count()
    }

    /// Maximum depth of the genealogy (root = depth 0).
    pub fn max_depth(&self) -> usize {
        let mut depths = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                depths[i] = depths[p.index()] + 1;
            }
            max = max.max(depths[i]);
        }
        max
    }

    /// Serializes the genealogy for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.nodes.len());
        for n in &self.nodes {
            w.u32(n.id.0);
            match n.parent {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.u32(p.0);
                }
            }
            w.u64(n.birth_cycle);
            w.opt_u64(n.death_cycle);
            w.u8(match n.place {
                BirthPlace::Context => 0,
                BirthPlace::Stack => 1,
                BirthPlace::Loader => 2,
            });
        }
    }

    /// Inverse of [`DivisionTree::encode`]. Rejects trees whose ids are
    /// not dense birth-order indices or whose parents are out of range.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<DivisionTree, CodecError> {
        let n = r.usize()?;
        if n > u32::MAX as usize {
            return Err(CodecError::Invalid("tree size"));
        }
        let mut nodes = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let id = WorkerId(r.u32()?);
            if id.0 as usize != i {
                return Err(CodecError::Invalid("non-dense worker id"));
            }
            let parent = match r.u8()? {
                0 => None,
                1 => {
                    let p = WorkerId(r.u32()?);
                    if p.0 as usize >= i {
                        return Err(CodecError::Invalid("parent after child"));
                    }
                    Some(p)
                }
                _ => return Err(CodecError::Invalid("parent tag")),
            };
            let birth_cycle = r.u64()?;
            let death_cycle = r.opt_u64()?;
            let place = match r.u8()? {
                0 => BirthPlace::Context,
                1 => BirthPlace::Stack,
                2 => BirthPlace::Loader,
                _ => return Err(CodecError::Invalid("birth place")),
            };
            nodes.push(DivisionNode { id, parent, birth_cycle, death_cycle, place });
        }
        Ok(DivisionTree { nodes })
    }

    /// Renders the genealogy as Graphviz DOT, one node per worker, edges
    /// parent → child — the same picture as the paper's Figure 6.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph divisions {\n  node [shape=circle, fontsize=8];\n");
        for n in &self.nodes {
            let life = match n.death_cycle {
                Some(d) => format!("{}..{}", n.birth_cycle, d),
                None => format!("{}..", n.birth_cycle),
            };
            let _ = writeln!(out, "  n{} [label=\"{}\\n{}\"];", n.id.0, n.id, life);
            if let Some(p) = n.parent {
                let _ = writeln!(out, "  n{} -> n{};", p.0, n.id.0);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_derived_quantities() {
        let s = SimStats {
            cycles: 1000,
            committed: 2500,
            divisions_requested: 10,
            divisions_granted_context: 4,
            divisions_granted_stack: 1,
            branches: 100,
            branch_mispredicts: 7,
            active_context_cycles: 4000,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(s.divisions_granted(), 5);
        assert!((s.grant_rate() - 0.5).abs() < 1e-12);
        assert!((s.insts_per_division().unwrap() - 500.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.07).abs() < 1e-12);
        assert!((s.mean_active_contexts() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stats_edge_cases_are_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.grant_rate(), 0.0);
        assert_eq!(s.insts_per_division(), None);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn stats_display_is_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
    }

    /// The reference the histogram's estimate is pinned against: sort
    /// the raw samples, take the rank-`ceil(q*n)` order statistic, and
    /// quantize it exactly as [`Histogram::quantile_bound`] promises —
    /// the power-of-two bucket upper bound, capped at the observed max.
    fn exact_quantile_bound(samples: &[u64], q: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let v = sorted[rank - 1];
        let k = (64 - v.leading_zeros()) as usize;
        bucket_hi(k).min(*sorted.last().unwrap())
    }

    #[test]
    fn quantile_bounds_pin_exact_values_on_a_linear_ramp() {
        // 1..=1000: every order statistic is known in closed form, so
        // the expected bounds are hand-derivable literals.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 rank 500 → sample 500 → bucket [256, 511].
        assert_eq!(h.quantile_bound(0.50), Some(511));
        // p90 rank 900 → sample 900 → bucket [512, 1023], capped at max.
        assert_eq!(h.quantile_bound(0.90), Some(1000));
        // p99 rank 990 → sample 990 → same bucket and cap.
        assert_eq!(h.quantile_bound(0.99), Some(1000));
        // Extremes: p0 clamps to rank 1 (the min bucket), p100 to max.
        assert_eq!(h.quantile_bound(0.0), Some(1));
        assert_eq!(h.quantile_bound(1.0), Some(1000));
    }

    #[test]
    fn quantile_bounds_match_the_exact_order_statistics_on_seeded_draws() {
        // Three seeded distributions with very different shapes; for
        // each, the bucketed estimate must land exactly on the
        // quantized order statistic and (being an upper bound) at or
        // above the raw one.
        use crate::rng::Rng;
        for (seed, lo, hi) in [(7u64, 0u64, 4_096u64), (11, 100, 200), (42, 1, 1 << 20)] {
            let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(seed);
            let samples: Vec<u64> = (0..1_000).map(|_| lo + rng.u64_below(hi - lo)).collect();
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            for q in [0.5, 0.9, 0.99] {
                let got = h.quantile_bound(q).unwrap();
                assert_eq!(got, exact_quantile_bound(&samples, q), "seed {seed} q {q}");
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
                assert!(got >= sorted[rank - 1], "seed {seed} q {q}: bound below the raw quantile");
                assert!(got <= *sorted.last().unwrap(), "seed {seed} q {q}: bound above the max");
            }
        }
    }

    #[test]
    fn quantile_bounds_survive_merging_shards() {
        // Quantiles over a merged histogram equal quantiles over the
        // concatenated samples — the property fleet stats aggregation
        // relies on when it merges per-backend latency histograms.
        use crate::rng::Rng;
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let all: Vec<u64> = (0..900).map(|_| rng.u64_below(50_000)).collect();
        let mut merged = Histogram::new();
        for chunk in all.chunks(300) {
            let mut shard = Histogram::new();
            for &v in chunk {
                shard.record(v);
            }
            merged.merge(&shard);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile_bound(q).unwrap(), exact_quantile_bound(&all, q), "q {q}");
        }
    }

    #[test]
    fn section_tracker_basic_span() {
        let mut t = SectionTracker::new();
        t.enter(1, 100);
        t.leave(1, 250);
        assert_eq!(t.section_cycles(1), 150);
        assert_eq!(t.section_entries(1), 1);
        assert!((t.section_fraction(1, 300) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn section_tracker_overlapping_entries_count_once() {
        let mut t = SectionTracker::new();
        // Two threads inside the same section with overlap: wall-clock span
        // is 100..300, not the sum of both stays.
        t.enter(0, 100);
        t.enter(0, 150);
        t.leave(0, 200);
        t.leave(0, 300);
        assert_eq!(t.section_cycles(0), 200);
        assert_eq!(t.section_entries(0), 2);
    }

    #[test]
    fn section_tracker_unbalanced_leave_ignored() {
        let mut t = SectionTracker::new();
        t.leave(3, 50);
        assert_eq!(t.section_cycles(3), 0);
    }

    #[test]
    fn section_tracker_finish_closes_open_sections() {
        let mut t = SectionTracker::new();
        t.enter(2, 10);
        t.finish(110);
        assert_eq!(t.section_cycles(2), 100);
    }

    #[test]
    fn division_tree_genealogy() {
        let mut tree = DivisionTree::new();
        let root = tree.record_birth(None, 0, BirthPlace::Loader);
        let a = tree.record_birth(Some(root), 10, BirthPlace::Context);
        let b = tree.record_birth(Some(a), 20, BirthPlace::Stack);
        tree.record_death(b, 30);
        tree.record_death(a, 50);

        assert_eq!(tree.len(), 3);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.live_at(5), 1);
        assert_eq!(tree.live_at(25), 3);
        assert_eq!(tree.live_at(40), 2);
        assert_eq!(tree.live_at(60), 1);

        let dot = tree.to_dot();
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn division_tree_empty() {
        let tree = DivisionTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.live_at(100), 0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(0.99), None);
        let j = h.to_json().to_string_compact();
        assert!(j.contains("\"count\":0"), "{j}");
        assert!(j.contains("\"buckets\":[]"), "{j}");
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // 0→bucket0, 1→[1,1], 2..3→[2,3], 4→[4,7], 1000→[512,1023], MAX→last
        let j = h.to_json();
        let rows = j.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 6);
        let row = |i: usize| {
            let r = &rows[i];
            (
                r.get("lo").unwrap().as_u64().unwrap(),
                r.get("hi").unwrap().as_u64().unwrap(),
                r.get("count").unwrap().as_u64().unwrap(),
            )
        };
        assert_eq!(row(0), (0, 0, 1));
        assert_eq!(row(1), (1, 1, 1));
        assert_eq!(row(2), (2, 3, 2));
        assert_eq!(row(3), (4, 7, 1));
        assert_eq!(row(4), (512, 1023, 1));
        assert_eq!(row(5), (1 << 63, u64::MAX, 1));
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(100_000); // bucket [65536, 131071]
        assert_eq!(h.quantile_bound(0.5), Some(15));
        assert_eq!(h.quantile_bound(0.99), Some(15));
        // The top sample caps at the observed max, not the bucket edge.
        assert_eq!(h.quantile_bound(1.0), Some(100_000));
    }

    #[test]
    fn histogram_merge_equals_recording_everything_once() {
        let samples_a = [0u64, 1, 7, 7, 512, 100_000];
        let samples_b = [3u64, 9, 1_000_000, u64::MAX];
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in samples_a {
            a.record(v);
            whole.record(v);
        }
        for v in samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram (either way) changes nothing.
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a, whole);
        let mut fresh = Histogram::new();
        fresh.merge(&whole);
        assert_eq!(fresh, whole);
    }

    #[test]
    fn histogram_merge_empty_preserves_summary() {
        // Folding an empty histogram in must not disturb the exact
        // summary fields (min in particular: the empty side carries the
        // u64::MAX sentinel, which must never leak into `min()`).
        let mut h = Histogram::new();
        for v in [5u64, 9, 1024] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(1024));
        // And the symmetric direction: empty absorbing a populated one.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        // Empty + empty stays empty (min() stays None, not the sentinel).
        let mut e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!(e2.count(), 0);
        assert_eq!(e2.min(), None);
        assert_eq!(e2.max(), None);
    }

    #[test]
    fn histogram_merge_is_commutative_on_random_samples() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        for seed in 0..32u64 {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let (mut a, mut b) = (Histogram::new(), Histogram::new());
            for _ in 0..rng.usize_below(200) {
                // Bit-width-uniform draws so every bucket gets traffic.
                let v = rng.next_u64() >> rng.u64_below(64);
                a.record(v);
            }
            for _ in 0..rng.usize_below(200) {
                let v = rng.next_u64() >> rng.u64_below(64);
                b.record(v);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge not commutative for seed {seed}");
            assert_eq!(
                ab.to_json().to_string_compact(),
                ba.to_json().to_string_compact(),
                "rendered forms diverge for seed {seed}"
            );
        }
    }

    #[test]
    fn histogram_from_json_roundtrips_all_65_buckets_byte_for_byte() {
        // One sample per bucket: 0, then 2^(k-1) for k in 1..=64 — the
        // complete 65-bucket layout. The JSON rendering must survive a
        // parse + from_json + to_json cycle with identical bytes.
        let mut h = Histogram::new();
        h.record(0);
        for k in 0..64 {
            h.record(1u64 << k);
        }
        assert_eq!(h.count(), 65);
        let rendered = h.to_json().to_string_compact();
        let parsed = Json::parse(&rendered).expect("rendering parses");
        let back = Histogram::from_json(&parsed).expect("roundtrip");
        assert_eq!(back, h);
        assert_eq!(back.to_json().to_string_compact(), rendered);
        // All 65 rows survive, including the u64::MAX top bucket.
        let rows = parsed.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 65);
        assert_eq!(rows[64].get("hi").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, 65_536, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).expect("roundtrip");
        assert_eq!(back, h);
        assert_eq!(back.quantile_bound(0.5), h.quantile_bound(0.5));
        // The empty histogram roundtrips through its null min/max.
        let empty = Histogram::new();
        assert_eq!(Histogram::from_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn histogram_from_json_rejects_malformed_renderings() {
        assert_eq!(Histogram::from_json(&Json::object()), None);
        // Bucket counts must add up to the claimed total.
        let lying = Json::parse(
            r#"{"count":2,"sum":5,"min":5,"max":5,"mean":2.5,
                "buckets":[{"lo":4,"hi":7,"count":1}]}"#,
        )
        .unwrap();
        assert_eq!(Histogram::from_json(&lying), None);
        // A bucket lower bound must be 0 or a power of two.
        let bad = Json::parse(
            r#"{"count":1,"sum":3,"min":3,"max":3,"mean":3.0,
                "buckets":[{"lo":3,"hi":3,"count":1}]}"#,
        )
        .unwrap();
        assert_eq!(Histogram::from_json(&bad), None);
    }
}
