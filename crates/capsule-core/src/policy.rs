//! The CAPSULE division policy.
//!
//! The paper (§3.1, "Division strategy"): *"an `nthr` instruction is
//! executed if there is a free hardware context, and if the number of
//! threads which died in the past N cycles (N = 128 in our experiments) is
//! smaller than half the number of hardware contexts."*
//!
//! [`DeathRateWindow`] tracks worker deaths over the sliding window;
//! [`DivisionPolicy`] combines it with resource availability into a
//! [`DivisionDecision`].

use std::collections::VecDeque;

use crate::codec::{CodecError, Reader, Writer};
use crate::config::{DivisionMode, MachineConfig};

/// Sliding-window counter of worker deaths.
///
/// Deaths are recorded with the cycle at which the corresponding `kthr`
/// committed; [`DeathRateWindow::deaths_within`] counts those whose age is
/// strictly less than the window length.
#[derive(Debug, Clone, Default)]
pub struct DeathRateWindow {
    window: u64,
    deaths: VecDeque<u64>,
    total: u64,
}

impl DeathRateWindow {
    /// Creates a window of `window` cycles (the paper uses 128).
    pub fn new(window: u64) -> Self {
        DeathRateWindow { window, deaths: VecDeque::new(), total: 0 }
    }

    /// Records one worker death at `cycle`.
    ///
    /// Cycles must be non-decreasing across calls; out-of-order records are
    /// clamped forward to preserve the window invariant.
    pub fn record_death(&mut self, cycle: u64) {
        let cycle = self.deaths.back().map_or(cycle, |&last| cycle.max(last));
        self.deaths.push_back(cycle);
        self.total += 1;
    }

    /// Number of deaths in the `window` cycles ending at `now`.
    pub fn deaths_within(&mut self, now: u64) -> usize {
        let horizon = now.saturating_sub(self.window);
        while let Some(&front) = self.deaths.front() {
            if front < horizon {
                self.deaths.pop_front();
            } else {
                break;
            }
        }
        // Entries recorded "in the future" relative to `now` (possible when
        // the caller queries mid-cycle) still count: they are within any
        // window ending at a later observation point.
        self.deaths.len()
    }

    /// Total deaths ever recorded.
    pub fn total_deaths(&self) -> u64 {
        self.total
    }

    /// The window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Serializes the window (length, pending death cycles, total) for
    /// checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.window);
        w.usize(self.deaths.len());
        for &c in &self.deaths {
            w.u64(c);
        }
        w.u64(self.total);
    }

    /// Inverse of [`DeathRateWindow::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input (death cycles must
    /// be non-decreasing, the window invariant).
    pub fn decode(r: &mut Reader<'_>) -> Result<DeathRateWindow, CodecError> {
        let window = r.u64()?;
        let n = r.usize()?;
        let mut deaths = VecDeque::with_capacity(n.min(1 << 20));
        let mut last = 0u64;
        for _ in 0..n {
            let c = r.u64()?;
            if c < last {
                return Err(CodecError::Invalid("death cycles out of order"));
            }
            last = c;
            deaths.push_back(c);
        }
        let total = r.u64()?;
        if total < deaths.len() as u64 {
            return Err(CodecError::Invalid("death total below pending"));
        }
        Ok(DeathRateWindow { window, deaths, total })
    }
}

/// Resource availability snapshot accompanying an `nthr` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivisionRequest {
    /// Physical hardware contexts currently free.
    pub free_contexts: usize,
    /// Free slots on the LIFO context stack (0 when the stack is disabled).
    pub stack_free_slots: usize,
}

/// Outcome of a division request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionDecision {
    /// Granted; the child seizes a free physical context.
    GrantToContext,
    /// Granted; the child is born suspended on the context stack
    /// (only with [`MachineConfig::allow_divide_to_stack`]).
    GrantToStack,
    /// Denied: no context (and no usable stack slot) available.
    DenyNoResource,
    /// Denied: the death-rate throttle is closed (workers dying too fast).
    DenyThrottled,
    /// Denied: this machine never divides (superscalar / static SMT).
    DenyDisabled,
}

impl DivisionDecision {
    /// Whether the request was granted.
    pub fn granted(self) -> bool {
        matches!(self, DivisionDecision::GrantToContext | DivisionDecision::GrantToStack)
    }
}

/// The hardware's division decision logic.
///
/// Owns the death-rate window; the host (simulator or runtime) reports
/// deaths via [`DivisionPolicy::record_death`] and asks for decisions via
/// [`DivisionPolicy::decide`].
#[derive(Debug, Clone)]
pub struct DivisionPolicy {
    mode: DivisionMode,
    window: DeathRateWindow,
    death_limit: usize,
    allow_divide_to_stack: bool,
}

impl DivisionPolicy {
    /// Builds the policy described by `cfg`.
    pub fn from_config(cfg: &MachineConfig) -> Self {
        DivisionPolicy {
            mode: cfg.division_mode,
            window: DeathRateWindow::new(cfg.death_window),
            death_limit: cfg.throttle_death_limit(),
            allow_divide_to_stack: cfg.allow_divide_to_stack,
        }
    }

    /// Builds a policy directly from parts (useful for the native runtime
    /// where there is no full machine config).
    pub fn new(
        mode: DivisionMode,
        death_window: u64,
        death_limit: usize,
        allow_divide_to_stack: bool,
    ) -> Self {
        DivisionPolicy {
            mode,
            window: DeathRateWindow::new(death_window),
            death_limit,
            allow_divide_to_stack,
        }
    }

    /// Records a worker death (a committed `kthr`) at `cycle`.
    pub fn record_death(&mut self, cycle: u64) {
        self.window.record_death(cycle);
    }

    /// Decides an `nthr` request issued at `cycle` under `req` availability.
    pub fn decide(&mut self, cycle: u64, req: DivisionRequest) -> DivisionDecision {
        match self.mode {
            DivisionMode::Never => DivisionDecision::DenyDisabled,
            DivisionMode::Greedy => self.decide_resources(req),
            DivisionMode::GreedyThrottled => {
                if self.window.deaths_within(cycle) >= self.death_limit.max(1) {
                    DivisionDecision::DenyThrottled
                } else {
                    self.decide_resources(req)
                }
            }
        }
    }

    fn decide_resources(&self, req: DivisionRequest) -> DivisionDecision {
        if req.free_contexts > 0 {
            DivisionDecision::GrantToContext
        } else if self.allow_divide_to_stack && req.stack_free_slots > 0 {
            DivisionDecision::GrantToStack
        } else {
            DivisionDecision::DenyNoResource
        }
    }

    /// Read access to the death window (for stats and tests).
    pub fn death_window(&self) -> &DeathRateWindow {
        &self.window
    }

    /// Current throttle state at `cycle`: `true` when the policy would deny
    /// for death-rate reasons regardless of resources.
    pub fn throttled(&mut self, cycle: u64) -> bool {
        self.mode == DivisionMode::GreedyThrottled
            && self.window.deaths_within(cycle) >= self.death_limit.max(1)
    }

    /// Serializes the policy's mutable state (the death window) for
    /// checkpoints. The static fields (mode, limit, stack flag) are
    /// derived from configuration and rebuilt at restore.
    pub fn encode_state(&self, w: &mut Writer) {
        self.window.encode(w);
    }

    /// Restores the mutable state written by
    /// [`DivisionPolicy::encode_state`] into a policy already built from
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        self.window = DeathRateWindow::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(free: usize, stack: usize) -> DivisionRequest {
        DivisionRequest { free_contexts: free, stack_free_slots: stack }
    }

    #[test]
    fn never_mode_always_denies() {
        let mut p = DivisionPolicy::new(DivisionMode::Never, 128, 4, true);
        assert_eq!(p.decide(0, req(8, 16)), DivisionDecision::DenyDisabled);
    }

    #[test]
    fn greedy_grants_on_free_context() {
        let mut p = DivisionPolicy::new(DivisionMode::Greedy, 128, 4, false);
        assert_eq!(p.decide(0, req(1, 0)), DivisionDecision::GrantToContext);
        assert_eq!(p.decide(0, req(0, 5)), DivisionDecision::DenyNoResource);
    }

    #[test]
    fn stack_grant_requires_flag() {
        let mut with = DivisionPolicy::new(DivisionMode::Greedy, 128, 4, true);
        let mut without = DivisionPolicy::new(DivisionMode::Greedy, 128, 4, false);
        assert_eq!(with.decide(0, req(0, 3)), DivisionDecision::GrantToStack);
        assert_eq!(without.decide(0, req(0, 3)), DivisionDecision::DenyNoResource);
    }

    #[test]
    fn throttle_closes_after_rapid_deaths() {
        let cfg = MachineConfig::table1_somt();
        let mut p = DivisionPolicy::from_config(&cfg);
        // Limit is contexts/2 = 4 deaths inside 128 cycles.
        for c in 0..4 {
            p.record_death(c);
        }
        assert_eq!(p.decide(10, req(8, 16)), DivisionDecision::DenyThrottled);
        assert!(p.throttled(10));
        // Once the window slides past the burst, it reopens.
        assert_eq!(p.decide(400, req(8, 16)), DivisionDecision::GrantToContext);
        assert!(!p.throttled(400));
    }

    #[test]
    fn throttle_limit_boundary() {
        let mut p = DivisionPolicy::new(DivisionMode::GreedyThrottled, 128, 4, false);
        for c in 0..3 {
            p.record_death(c);
        }
        // 3 < 4: still open.
        assert!(p.decide(5, req(1, 0)).granted());
        p.record_death(4);
        // 4 >= 4: closed.
        assert_eq!(p.decide(5, req(1, 0)), DivisionDecision::DenyThrottled);
    }

    #[test]
    fn zero_limit_behaves_as_limit_one() {
        // A 1-context machine has limit 0; .max(1) keeps the policy usable
        // (it throttles only once a death actually happened recently).
        let mut p = DivisionPolicy::new(DivisionMode::GreedyThrottled, 128, 0, false);
        assert!(p.decide(0, req(1, 0)).granted());
        p.record_death(1);
        assert_eq!(p.decide(2, req(1, 0)), DivisionDecision::DenyThrottled);
    }

    #[test]
    fn window_expires_old_deaths() {
        let mut w = DeathRateWindow::new(128);
        w.record_death(0);
        w.record_death(100);
        assert_eq!(w.deaths_within(100), 2);
        assert_eq!(w.deaths_within(129), 1); // death at 0 aged out
        assert_eq!(w.deaths_within(300), 0);
        assert_eq!(w.total_deaths(), 2);
    }

    #[test]
    fn window_clamps_out_of_order_records() {
        let mut w = DeathRateWindow::new(10);
        w.record_death(50);
        w.record_death(20); // clamped to 50
        assert_eq!(w.deaths_within(55), 2);
        assert_eq!(w.deaths_within(70), 0);
    }

    #[test]
    fn decision_granted_helper() {
        assert!(DivisionDecision::GrantToContext.granted());
        assert!(DivisionDecision::GrantToStack.granted());
        assert!(!DivisionDecision::DenyNoResource.granted());
        assert!(!DivisionDecision::DenyThrottled.granted());
        assert!(!DivisionDecision::DenyDisabled.granted());
    }
}
