//! Shared model types for the CAPSULE reproduction.
//!
//! This crate holds everything that is common to the cycle-level SOMT
//! simulator (`capsule-sim`) and the native-thread runtime analog
//! (`capsule-rt`):
//!
//! - the **division policy** of the paper (greedy granting of `nthr`
//!   requests, throttled by the worker death rate observed over a sliding
//!   window of cycles), in [`policy`];
//! - the **machine configuration** of Table 1 of the paper, in [`config`];
//! - **statistics** counters and the division genealogy used to regenerate
//!   the paper's figures, in [`stats`];
//! - small **identifier newtypes** in [`ids`];
//! - hermetic seeded **pseudo-random generators** (SplitMix64,
//!   xoshiro256\*\*) behind the dataset generators and seeded tests, in
//!   [`rng`];
//! - a hand-rolled, dependency-free **JSON writer** for machine-readable
//!   reports, in [`output`];
//! - **observability** primitives (request-scoped tracing spans, a
//!   deterministic metrics exposition) shared by the serving layers, in
//!   [`obs`].
//!
//! # Example
//!
//! ```
//! use capsule_core::config::MachineConfig;
//! use capsule_core::policy::{DivisionDecision, DivisionPolicy, DivisionRequest};
//!
//! let cfg = MachineConfig::table1_somt();
//! let mut policy = DivisionPolicy::from_config(&cfg);
//! let decision = policy.decide(
//!     100, // current cycle
//!     DivisionRequest { free_contexts: 3, stack_free_slots: 16 },
//! );
//! assert_eq!(decision, DivisionDecision::GrantToContext);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod ids;
pub mod obs;
pub mod output;
pub mod policy;
pub mod rng;
pub mod stats;

pub use config::MachineConfig;
pub use ids::{ContextId, WorkerId};
pub use obs::flight::{FlightEvent, FlightKind, FlightRecorder, FlightSnapshot};
pub use obs::{Ewma, MetricsRegistry, SpanId, SpanTree, TailPolicy, TraceRecorder, TraceStore};
pub use output::OutValue;
pub use policy::{DeathRateWindow, DivisionDecision, DivisionPolicy, DivisionRequest};
pub use stats::{DivisionTree, SectionTracker, SimStats};
