//! Observability primitives shared by the job server and the fleet
//! coordinator: the always-on [`flight`] recorder, a bounded span/event
//! recorder for request-scoped tracing, a bounded store of finished
//! traces with a tail-sampling [`TailPolicy`], EWMA health gauges, and
//! a metrics registry with a deterministic text exposition.
//!
//! Everything here is cheap on the hot path by design: every `run` is
//! traced internally, but a finished trace is *retained* only when the
//! [`TailPolicy`] says it is interesting (slow beyond the rolling p99,
//! failed, retried, migrated, or explicitly requested with a
//! `trace_id`); the flight ring records one tiny event per decision
//! under a short mutex hold; and a metrics snapshot is built only when
//! a `metrics` request arrives. Nothing in this module reads wall-clock
//! time except [`TraceRecorder`] and the flight ring, whose timestamps
//! are microseconds relative to their own creation (monotonic, never
//! absolute) — so neither traces nor metrics introduce nondeterminism
//! into reports or exposition bodies.
//!
//! See `docs/OBSERVABILITY.md` for the wire formats built on top of this.

pub mod flight;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::output::Json;
use crate::stats::Histogram;

/// Handle to a span inside a [`TraceRecorder`].
///
/// When the recorder's span budget is exhausted, [`TraceRecorder::span`]
/// returns a sentinel handle; every operation on it is a silent no-op and
/// the drop is counted. Callers therefore never need to branch on
/// "did this span fit".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    const NONE: SpanId = SpanId(u32::MAX);

    /// The span's dense index in the recorded tree, or `None` for the
    /// over-budget sentinel. Useful when a span id must be carried
    /// outside the recorder (e.g. as a graft point in a serialized tree).
    pub fn index(self) -> Option<usize> {
        (self != SpanId::NONE).then_some(self.0 as usize)
    }
}

/// One timestamped event inside a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the recorder's epoch.
    pub at_us: u64,
    /// Event name (e.g. `"cache-miss"`).
    pub name: String,
    /// Key/value annotations, in recording order.
    pub attrs: Vec<(String, String)>,
}

/// One finished (or still-open) span of a [`SpanTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Dense id, assigned in start order from 0.
    pub id: u32,
    /// Parent span id; `None` for roots.
    pub parent: Option<u32>,
    /// Span name (e.g. `"serve.run"`).
    pub name: String,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// End, microseconds since the recorder's epoch; `None` when the span
    /// was still open at [`TraceRecorder::finish`] time.
    pub end_us: Option<u64>,
    /// Key/value annotations, in recording order.
    pub attrs: Vec<(String, String)>,
    /// Events recorded into this span, in time order.
    pub events: Vec<Event>,
}

/// The finished output of a [`TraceRecorder`]: spans in start order plus
/// the number of spans/events that did not fit the budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Spans in start order (ids are indices).
    pub spans: Vec<Span>,
    /// Spans and events dropped because a budget was exhausted.
    pub dropped: u64,
}

fn attrs_json(attrs: &[(String, String)]) -> Json {
    let mut o = Json::object();
    for (k, v) in attrs {
        o.push(k, v.as_str());
    }
    o
}

impl SpanTree {
    /// Renders the tree as the wire shape used by the `trace` op:
    /// `{"spans": [...], "dropped": n}`. Span ids are dense indices, so a
    /// consumer can rebuild the tree without a lookup table.
    pub fn to_json(&self) -> Json {
        let mut spans = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let mut o = Json::object();
            o.push("id", s.id)
                .push("parent", s.parent.map_or(Json::Null, |p| Json::UInt(p as u64)))
                .push("name", s.name.as_str())
                .push("start_us", s.start_us)
                .push("end_us", s.end_us.map_or(Json::Null, Json::UInt))
                .push("attrs", attrs_json(&s.attrs));
            let mut events = Vec::with_capacity(s.events.len());
            for e in &s.events {
                let mut eo = Json::object();
                eo.push("at_us", e.at_us)
                    .push("name", e.name.as_str())
                    .push("attrs", attrs_json(&e.attrs));
                events.push(eo);
            }
            o.push("events", Json::Array(events));
            spans.push(o);
        }
        let mut out = Json::object();
        out.push("spans", Json::Array(spans)).push("dropped", self.dropped);
        out
    }
}

/// Records one request's span tree with monotonic timestamps and hard
/// span/event budgets (overflow is counted, never reallocated past the
/// caps). Built per traced request; cheap enough that the only cost for
/// untraced requests is the `Option` branch at each call site.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    spans: Vec<Span>,
    max_spans: usize,
    max_events: usize,
    events: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder holding at most `max_spans` spans and `max_events`
    /// events (summed across spans). The epoch is "now".
    pub fn new(max_spans: usize, max_events: usize) -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            spans: Vec::new(),
            max_spans,
            max_events,
            events: 0,
            dropped: 0,
        }
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.at(Instant::now())
    }

    /// Microseconds between the epoch and `t` (0 when `t` predates it).
    pub fn at(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Starts a span now. Returns a sentinel (all later operations no-op,
    /// drop counted) when the span budget is exhausted.
    pub fn span(&mut self, name: &str, parent: Option<SpanId>) -> SpanId {
        let now = self.now_us();
        self.span_at(name, parent, now)
    }

    /// Starts a span with an explicit start timestamp (e.g. an enqueue
    /// instant observed before the worker picked the job up).
    pub fn span_at(&mut self, name: &str, parent: Option<SpanId>, start_us: u64) -> SpanId {
        if self.spans.len() >= self.max_spans {
            self.dropped += 1;
            return SpanId::NONE;
        }
        let id = self.spans.len() as u32;
        self.spans.push(Span {
            id,
            parent: parent.and_then(|p| p.index()).map(|p| p as u32),
            name: name.to_string(),
            start_us,
            end_us: None,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        SpanId(id)
    }

    /// Attaches a key/value annotation to `span`.
    pub fn attr(&mut self, span: SpanId, key: &str, value: &str) {
        if let Some(i) = span.index() {
            self.spans[i].attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Records an event into `span` at "now".
    pub fn event(&mut self, span: SpanId, name: &str, attrs: &[(&str, &str)]) {
        let now = self.now_us();
        self.event_at(span, name, attrs, now);
    }

    /// Records an event into `span` with an explicit timestamp.
    pub fn event_at(&mut self, span: SpanId, name: &str, attrs: &[(&str, &str)], at_us: u64) {
        let Some(i) = span.index() else { return };
        if self.events >= self.max_events {
            self.dropped += 1;
            return;
        }
        self.events += 1;
        self.spans[i].events.push(Event {
            at_us,
            name: name.to_string(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        });
    }

    /// Ends `span` now (idempotent: a second end keeps the first stamp).
    pub fn end(&mut self, span: SpanId) {
        let now = self.now_us();
        self.end_at(span, now);
    }

    /// Ends `span` with an explicit timestamp.
    pub fn end_at(&mut self, span: SpanId, at_us: u64) {
        if let Some(i) = span.index() {
            let e = &mut self.spans[i].end_us;
            if e.is_none() {
                *e = Some(at_us);
            }
        }
    }

    /// Spans and events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes the trace: any span still open is ended now, and the
    /// recorder is consumed into its [`SpanTree`].
    pub fn finish(mut self) -> SpanTree {
        let now = self.now_us();
        for s in &mut self.spans {
            if s.end_us.is_none() {
                s.end_us = Some(now);
            }
        }
        SpanTree { spans: self.spans, dropped: self.dropped }
    }
}

/// A bounded id → trace map with FIFO eviction: the server keeps the last
/// N finished traces and the `trace` op looks them up by id. Re-putting an
/// existing id replaces it in place (a retried request keeps one slot).
#[derive(Debug)]
pub struct TraceStore {
    cap: usize,
    entries: VecDeque<(String, Json)>,
}

impl TraceStore {
    /// A store retaining at most `cap` traces (0 disables storage).
    pub fn new(cap: usize) -> Self {
        TraceStore { cap, entries: VecDeque::new() }
    }

    /// Inserts or replaces the trace for `id`, evicting the oldest entry
    /// when full.
    pub fn put(&mut self, id: &str, value: Json) {
        if self.cap == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == id) {
            e.1 = value;
            return;
        }
        if self.entries.len() >= self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((id.to_string(), value));
    }

    /// The stored trace for `id`, if still retained.
    pub fn get(&self, id: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == id).map(|(_, v)| v)
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the retained traces, oldest first — the `dump` op's
    /// view of the store.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Decides which finished traces the [`TraceStore`] keeps: the tail.
///
/// Every run is traced internally, but retaining every tree would make
/// the bounded store useless under load — the interesting jobs (the
/// p99 straggler, the retried dispatch) would be evicted by the boring
/// ones within seconds. The policy keeps a [`Histogram`] of run
/// durations and retains a trace when the caller flags it interesting
/// (failed, retried, migrated, or explicitly requested) **or** when its
/// duration is strictly above the rolling p99 bound of everything
/// observed *before* it. The threshold is consulted before the sample
/// is folded in, so the first observation is never self-retained and a
/// burst of identical slow jobs retains only until the histogram
/// catches up.
#[derive(Debug, Default)]
pub struct TailPolicy {
    hist: Histogram,
}

impl TailPolicy {
    /// A policy with no history (nothing is slow yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current retention threshold: the p99 upper bound of observed
    /// durations, `None` before the first observation.
    pub fn p99_bound(&self) -> Option<u64> {
        self.hist.quantile_bound(0.99)
    }

    /// Durations observed so far.
    pub fn observed(&self) -> u64 {
        self.hist.count()
    }

    /// Folds one finished run into the history and decides retention:
    /// true when `interesting` (the caller's fail/retry/migrate/
    /// explicit flag) or when `run_us` lands strictly above the
    /// pre-sample p99 bound.
    pub fn observe(&mut self, run_us: u64, interesting: bool) -> bool {
        let keep = interesting || self.p99_bound().is_some_and(|t| run_us > t);
        self.hist.record(run_us);
        keep
    }
}

/// An exponentially weighted moving average gauge (α = 1/8) over `u64`
/// samples, updatable without a lock.
///
/// `observe` is a load/compute/store (not a CAS loop): under heavy
/// concurrent writes an update can be lost, which for a smoothing gauge
/// is indistinguishable from a slightly smaller α. Integer division
/// truncates toward zero, so the gauge settles within 7 units of a
/// steady signal — microsecond-scale noise for the latency gauges built
/// on it. A fresh gauge reads 0 and seeds itself with the first sample.
#[derive(Debug)]
pub struct Ewma {
    bits: AtomicU64,
}

const EWMA_UNSEEDED: u64 = u64::MAX;

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new()
    }
}

impl Ewma {
    /// A gauge with no history (reads 0 until the first observation).
    pub const fn new() -> Self {
        Ewma { bits: AtomicU64::new(EWMA_UNSEEDED) }
    }

    /// Folds one sample into the average.
    pub fn observe(&self, sample: u64) {
        let sample = sample.min(EWMA_UNSEEDED - 1);
        let cur = self.bits.load(Ordering::Relaxed);
        let next = if cur == EWMA_UNSEEDED {
            sample
        } else {
            let diff = (sample as i64).wrapping_sub(cur as i64) / 8;
            cur.wrapping_add(diff as u64)
        };
        self.bits.store(next, Ordering::Relaxed);
    }

    /// The current average (0 when nothing has been observed).
    pub fn get(&self) -> u64 {
        let v = self.bits.load(Ordering::Relaxed);
        if v == EWMA_UNSEEDED {
            0
        } else {
            v
        }
    }
}

/// A point-in-time set of named samples rendered as deterministic
/// Prometheus-style text: one `name{label="v",...} value` line per
/// sample, sorted bytewise by the full `name{labels}` key, values are
/// unsigned integers, no timestamps. Two snapshots of identical state
/// render byte-identically — the property the `metrics` op's golden
/// tests and the CI double-scrape pin down.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    samples: Vec<(String, u64)>,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn sample_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(&escape_label(v));
        key.push('"');
    }
    key.push('}');
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Samples with the identical name + label set
    /// are summed in [`MetricsRegistry::render`] (convenient when
    /// aggregating per-shard state into one exposition).
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push((sample_key(name, labels), value));
    }

    /// Expands a [`Histogram`] into the conventional family of samples:
    /// `name_count`, `name_sum`, `name_min`/`name_max` (only when
    /// non-empty), and cumulative `name_bucket{le="..."}` lines for each
    /// non-empty power-of-two bucket plus the `le="+Inf"` total.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.set(&format!("{name}_count"), labels, h.count());
        self.set(&format!("{name}_sum"), labels, h.sum());
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            self.set(&format!("{name}_min"), labels, min);
            self.set(&format!("{name}_max"), labels, max);
        }
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (_lo, hi, count) in h.bucket_rows() {
            cumulative += count;
            let le = hi.to_string();
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.set(&bucket, &with_le, cumulative);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.set(&bucket, &with_inf, h.count());
    }

    /// Renders the exposition body. Stable: lines sorted bytewise by
    /// key, duplicate keys summed, `\n`-terminated. Contains no
    /// timestamps and no floats, so identical state renders
    /// byte-identically.
    pub fn render(&self) -> String {
        let mut samples = self.samples.clone();
        samples.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        let mut i = 0;
        while i < samples.len() {
            let (key, mut value) = (samples[i].0.as_str(), samples[i].1);
            let mut j = i + 1;
            while j < samples.len() && samples[j].0 == key {
                value = value.saturating_add(samples[j].1);
                j += 1;
            }
            out.push_str(key);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_builds_a_tree() {
        let mut r = TraceRecorder::new(8, 8);
        let root = r.span("serve.run", None);
        r.attr(root, "scenario", "s1");
        r.event(root, "cache-miss", &[]);
        let child = r.span("serve.execute", Some(root));
        r.attr(child, "outcome", "completed");
        r.end(child);
        let tree = r.finish();
        assert_eq!(tree.spans.len(), 2);
        assert_eq!(tree.dropped, 0);
        assert_eq!(tree.spans[0].name, "serve.run");
        assert_eq!(tree.spans[0].parent, None);
        assert_eq!(tree.spans[1].parent, Some(0));
        // finish() closed the still-open root.
        assert!(tree.spans[0].end_us.is_some());
        assert!(tree.spans[1].end_us.unwrap() <= tree.spans[0].end_us.unwrap());
        let json = tree.to_json().to_string_compact();
        assert!(json.contains("\"name\":\"serve.execute\""));
        assert!(json.contains("\"cache-miss\""));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn recorder_budgets_count_drops() {
        let mut r = TraceRecorder::new(1, 2);
        let root = r.span("root", None);
        let over = r.span("over", Some(root));
        assert_eq!(over, SpanId::NONE);
        r.attr(over, "k", "v"); // all no-ops, no panic
        r.event(over, "e", &[]);
        r.end(over);
        r.event(root, "a", &[]);
        r.event(root, "b", &[]);
        r.event(root, "c", &[]); // over the event budget
        let tree = r.finish();
        assert_eq!(tree.spans.len(), 1);
        assert_eq!(tree.spans[0].events.len(), 2);
        assert_eq!(tree.dropped, 2); // one span + one event
    }

    #[test]
    fn recorder_explicit_timestamps() {
        let mut r = TraceRecorder::new(4, 4);
        let s = r.span_at("queue", None, 3);
        r.event_at(s, "picked-up", &[("worker", "1")], 9);
        r.end_at(s, 11);
        r.end_at(s, 99); // idempotent: first end wins
        let tree = r.finish();
        assert_eq!(tree.spans[0].start_us, 3);
        assert_eq!(tree.spans[0].end_us, Some(11));
        assert_eq!(tree.spans[0].events[0].at_us, 9);
        assert_eq!(tree.spans[0].events[0].attrs, vec![("worker".into(), "1".into())]);
    }

    #[test]
    fn store_replaces_and_evicts_fifo() {
        let mut s = TraceStore::new(2);
        s.put("a", Json::UInt(1));
        s.put("b", Json::UInt(2));
        s.put("a", Json::UInt(3)); // replace in place, no eviction
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a").and_then(Json::as_u64), Some(3));
        s.put("c", Json::UInt(4)); // evicts the oldest ("a")
        assert_eq!(s.len(), 2);
        assert!(s.get("a").is_none());
        assert_eq!(s.get("b").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("c").and_then(Json::as_u64), Some(4));
        let mut off = TraceStore::new(0);
        off.put("x", Json::Null);
        assert!(off.is_empty());
    }

    #[test]
    fn tail_policy_keeps_failures_and_stragglers_only() {
        let mut p = TailPolicy::new();
        assert_eq!(p.p99_bound(), None);
        // The very first sample cannot be self-retained: no history.
        assert!(!p.observe(50_000, false));
        // Interesting runs are kept regardless of speed.
        assert!(p.observe(10, true));
        // A fast run under the bound is dropped...
        assert!(!p.observe(100, false));
        // ...while a straggler above the pre-sample p99 is kept.
        assert!(p.observe(80_000, false));
        assert_eq!(p.observed(), 4);
        // Once the straggler is in the history the p99 bound covers it,
        // so an equally-slow follow-up is no longer tail-retained.
        assert!(!p.observe(80_000, false));
        assert!(p.p99_bound().unwrap() >= 80_000);
    }

    #[test]
    fn tail_policy_threshold_is_the_pre_sample_p99() {
        let mut p = TailPolicy::new();
        for _ in 0..100 {
            p.observe(1_000, false);
        }
        let bound = p.p99_bound().unwrap();
        // quantile_bound caps at the observed max for a uniform bucket.
        assert_eq!(bound, 1_000);
        assert!(!p.observe(1_000, false), "equal to the bound is not above it");
        assert!(p.observe(1_001, false), "strictly above the bound is kept");
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let g = Ewma::new();
        assert_eq!(g.get(), 0);
        g.observe(800);
        assert_eq!(g.get(), 800, "first sample seeds the gauge");
        g.observe(0);
        assert_eq!(g.get(), 700, "800 + (0 - 800)/8");
        g.observe(1500);
        assert_eq!(g.get(), 800, "700 + (1500 - 700)/8");
        // Converges toward a steady signal (within the truncation band).
        for _ in 0..200 {
            g.observe(100);
        }
        assert!(g.get() >= 100 && g.get() <= 107, "got {}", g.get());
    }

    #[test]
    fn registry_renders_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.set("zeta_total", &[], 1);
        m.set("alpha_total", &[("shard", "b1")], 2);
        m.set("alpha_total", &[("shard", "b0")], 3);
        let body = m.render();
        assert_eq!(
            body,
            "alpha_total{shard=\"b0\"} 3\nalpha_total{shard=\"b1\"} 2\nzeta_total 1\n"
        );
        // Same state, fresh registry, identical bytes.
        let mut m2 = MetricsRegistry::new();
        m2.set("alpha_total", &[("shard", "b0")], 3);
        m2.set("zeta_total", &[], 1);
        m2.set("alpha_total", &[("shard", "b1")], 2);
        assert_eq!(m2.render(), body);
    }

    #[test]
    fn registry_sums_duplicates_and_escapes_labels() {
        let mut m = MetricsRegistry::new();
        m.set("jobs_total", &[("outcome", "ok")], 2);
        m.set("jobs_total", &[("outcome", "ok")], 3);
        m.set("err_total", &[("msg", "a\"b\\c\nd")], 1);
        let body = m.render();
        assert!(body.contains("jobs_total{outcome=\"ok\"} 5\n"));
        assert!(body.contains("err_total{msg=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn registry_histogram_family() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        let mut m = MetricsRegistry::new();
        m.histogram("wait_us", &[("q", "run")], &h);
        let body = m.render();
        assert!(body.contains("wait_us_count{q=\"run\"} 3\n"));
        assert!(body.contains("wait_us_sum{q=\"run\"} 6\n"));
        assert!(body.contains("wait_us_min{q=\"run\"} 0\n"));
        assert!(body.contains("wait_us_max{q=\"run\"} 3\n"));
        // Cumulative buckets: zeros bucket (le="0") then [2,3] (le="3").
        assert!(body.contains("wait_us_bucket{q=\"run\",le=\"0\"} 1\n"));
        assert!(body.contains("wait_us_bucket{q=\"run\",le=\"3\"} 3\n"));
        assert!(body.contains("wait_us_bucket{q=\"run\",le=\"+Inf\"} 3\n"));

        // Empty histogram: no min/max lines, +Inf bucket present at 0.
        let mut m2 = MetricsRegistry::new();
        m2.histogram("idle_us", &[], &Histogram::new());
        let body2 = m2.render();
        assert_eq!(body2, "idle_us_bucket{le=\"+Inf\"} 0\nidle_us_count 0\nidle_us_sum 0\n");
    }
}
