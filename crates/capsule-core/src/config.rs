//! Machine configuration, mirroring Table 1 of the paper.
//!
//! The paper evaluates three machines sharing one resource budget:
//!
//! * an aggressive **superscalar** (one hardware context, no division),
//! * a standard **SMT** (8 contexts, statically parallelized programs), and
//! * **SOMT** (8 contexts plus the CAPSULE division/swap/lock support).
//!
//! [`MachineConfig::table1_superscalar`], [`MachineConfig::table1_smt`] and
//! [`MachineConfig::table1_somt`] build those three presets.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Number of accesses the cache accepts per cycle.
    pub ports: usize,
}

impl CacheParams {
    /// Table 1 L1 data cache: 8 kB, 1-cycle.
    pub fn table1_l1d() -> Self {
        CacheParams { size_bytes: 8 * 1024, line_bytes: 64, assoc: 2, latency: 1, ports: 2 }
    }

    /// Table 1 L1 instruction cache: 16 kB, 1-cycle.
    pub fn table1_l1i() -> Self {
        CacheParams { size_bytes: 16 * 1024, line_bytes: 64, assoc: 2, latency: 1, ports: 4 }
    }

    /// Table 1 unified L2: 1 MB, 12-cycle.
    pub fn table1_l2() -> Self {
        CacheParams { size_bytes: 1024 * 1024, line_bytes: 64, assoc: 8, latency: 12, ports: 2 }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero line size or associativity,
    /// or a capacity that is not a multiple of `line_bytes * assoc`).
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.assoc > 0, "degenerate cache geometry");
        let set_bytes = self.line_bytes * self.assoc;
        assert!(
            self.size_bytes.is_multiple_of(set_bytes) && self.size_bytes > 0,
            "cache size {} not a multiple of line*assoc {}",
            self.size_bytes,
            set_bytes
        );
        self.size_bytes / set_bytes
    }

    /// Returns a copy with doubled capacity and doubled ports, used by the
    /// paper's vpr sensitivity experiment ("doubling cache size and cache
    /// ports improves the speedup of a single iteration from 2.47 to 3.5").
    pub fn doubled(&self) -> Self {
        CacheParams { size_bytes: self.size_bytes * 2, ports: self.ports * 2, ..*self }
    }
}

/// Functional-unit pool sizes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs.
    pub ialu: usize,
    /// Integer multiply/divide units.
    pub imult: usize,
    /// Floating-point ALUs.
    pub fpalu: usize,
    /// Floating-point multiply/divide units.
    pub fpmult: usize,
}

impl FuConfig {
    /// Table 1: 8 IALU, 4 IMULT, 4 FPALU, 4 FPMULT.
    pub fn table1() -> Self {
        FuConfig { ialu: 8, imult: 4, fpalu: 4, fpmult: 4 }
    }
}

/// Branch predictor configuration (Table 1: combined predictor with a 1K
/// meta table, a 4K-entry bimodal component and an 8K-entry two-level
/// component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries of the meta (chooser) table.
    pub meta_entries: usize,
    /// Entries of the bimodal table.
    pub bimodal_entries: usize,
    /// Entries of the second-level (history-indexed) table.
    pub twolevel_entries: usize,
    /// Global-history bits used by the two-level component.
    pub history_bits: u32,
    /// Extra cycles lost on a misprediction beyond pipeline refill.
    pub mispredict_penalty: u64,
}

impl PredictorConfig {
    /// Table 1 combined predictor.
    pub fn table1() -> Self {
        PredictorConfig {
            meta_entries: 1024,
            bimodal_entries: 4096,
            twolevel_entries: 8192,
            history_bits: 12,
            mispredict_penalty: 3,
        }
    }
}

/// How the machine answers `nthr` division requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionMode {
    /// Never grant (superscalar and static-SMT baselines).
    Never,
    /// Greedy: grant whenever a resource is available, with no death-rate
    /// throttling. Used by the "no throttle" ablation of Figure 7.
    Greedy,
    /// The paper's policy: greedy, but deny while the number of worker
    /// deaths observed in the last `window` cycles is at least half the
    /// number of hardware contexts.
    GreedyThrottled,
}

/// Full machine configuration.
///
/// Field defaults come from Table 1 of the paper; the three presets differ
/// only in context count and division mode, exactly as in the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of hardware thread contexts (8 for SMT/SOMT, 1 superscalar).
    pub contexts: usize,
    /// Instructions fetched per cycle in total (16).
    pub fetch_width: usize,
    /// Threads that may fetch each cycle under ICount (4).
    pub fetch_threads: usize,
    /// Instructions fetched per selected thread per cycle (4; a lone thread
    /// may use up to the line width, see the paper's fetch-buffer note).
    pub fetch_per_thread: usize,
    /// Decode/rename width shared by all threads (8).
    pub decode_width: usize,
    /// Issue width shared by all threads (8).
    pub issue_width: usize,
    /// Commit width shared by all threads (8).
    pub commit_width: usize,
    /// Register-update-unit (instruction window) entries (256).
    pub ruu_size: usize,
    /// Load/store queue entries (128).
    pub lsq_size: usize,
    /// Functional-unit pools.
    pub fus: FuConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2.
    pub l2: CacheParams,
    /// Main-memory latency in cycles (200).
    pub mem_latency: u64,
    /// Division handling.
    pub division_mode: DivisionMode,
    /// Sliding window, in cycles, for the death-rate throttle (N = 128).
    pub death_window: u64,
    /// Extra cycles charged to the child thread for the register copy at
    /// `nthr` commit. The paper estimates the SMT copy as a pipelined
    /// register transfer; its CMP sensitivity study sweeps this up to 200.
    pub division_latency: u64,
    /// Whether `nthr` may be granted by parking the child on the context
    /// stack when no physical context is free (interpretation choice
    /// documented in DESIGN.md).
    pub allow_divide_to_stack: bool,
    /// Entries of the LIFO context stack holding swapped-out threads (16).
    pub context_stack_entries: usize,
    /// Cycles to swap a thread between a context and the stack (200 for the
    /// paper's unoptimized 62-register copy).
    pub swap_latency: u64,
    /// Number of most-recent loads whose mean latency drives the swap
    /// heuristic (1000).
    pub swap_load_window: usize,
    /// Swap-out threshold for the per-thread slow-load counter (256).
    pub swap_counter_threshold: i64,
    /// Entries of the fast lock table.
    pub lock_table_entries: usize,
    /// Number of cores (1 = the paper's SMT; >1 = the shared-memory CMP
    /// extrapolation of §5: per-core pipelines and private L1s over the
    /// shared L2). `contexts` must be a multiple of `cores`.
    pub cores: usize,
    /// Extra register-copy cycles when a division's child lands on a
    /// different core (the paper sweeps this up to 200 in §5).
    pub remote_division_latency: u64,
    /// Cycles charged to a thread when its younger instructions are squashed
    /// because `mlock` found the lock held.
    pub lock_squash_penalty: u64,
}

impl MachineConfig {
    /// The paper's SOMT: 8 contexts, greedy-throttled division.
    pub fn table1_somt() -> Self {
        MachineConfig {
            contexts: 8,
            fetch_width: 16,
            fetch_threads: 4,
            fetch_per_thread: 4,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 256,
            lsq_size: 128,
            fus: FuConfig::table1(),
            predictor: PredictorConfig::table1(),
            l1i: CacheParams::table1_l1i(),
            l1d: CacheParams::table1_l1d(),
            l2: CacheParams::table1_l2(),
            mem_latency: 200,
            division_mode: DivisionMode::GreedyThrottled,
            death_window: 128,
            division_latency: 4,
            allow_divide_to_stack: true,
            context_stack_entries: 16,
            swap_latency: 200,
            swap_load_window: 1000,
            swap_counter_threshold: 256,
            lock_table_entries: 64,
            lock_squash_penalty: 3,
            cores: 1,
            remote_division_latency: 100,
        }
    }

    /// The §5 shared-memory CMP extrapolation: `cores` cores with
    /// `contexts_per_core` SOMT contexts each, private L1s, shared L2.
    pub fn cmp_somt(cores: usize, contexts_per_core: usize) -> Self {
        MachineConfig { cores, contexts: cores * contexts_per_core, ..Self::table1_somt() }
    }

    /// Standard SMT baseline: identical resources, division disabled
    /// (programs are statically parallelized by the loader).
    pub fn table1_smt() -> Self {
        MachineConfig { division_mode: DivisionMode::Never, ..Self::table1_somt() }
    }

    /// Aggressive superscalar baseline: one context, division disabled.
    pub fn table1_superscalar() -> Self {
        MachineConfig { contexts: 1, division_mode: DivisionMode::Never, ..Self::table1_somt() }
    }

    /// Maximum worker deaths tolerated inside the death window before the
    /// throttle closes: half the number of hardware contexts (paper §3.1).
    pub fn throttle_death_limit(&self) -> usize {
        self.contexts / 2
    }

    /// Basic structural validation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (zero widths, degenerate caches, empty context set, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.contexts == 0 {
            return Err("machine must have at least one context".into());
        }
        if self.fetch_width == 0 || self.decode_width == 0 || self.issue_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.commit_width == 0 {
            return Err("commit width must be non-zero".into());
        }
        if self.ruu_size == 0 || self.lsq_size == 0 {
            return Err("RUU and LSQ must be non-empty".into());
        }
        if self.fus.ialu == 0 {
            return Err("need at least one integer ALU".into());
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.line_bytes == 0 || c.assoc == 0 || c.size_bytes == 0 {
                return Err(format!("{name}: degenerate cache geometry"));
            }
            let set_bytes = c.line_bytes * c.assoc;
            if c.size_bytes % set_bytes != 0 {
                return Err(format!("{name}: size not a multiple of line*assoc"));
            }
            if c.ports == 0 {
                return Err(format!("{name}: cache needs at least one port"));
            }
        }
        if self.l1d.line_bytes != self.l2.line_bytes || self.l1i.line_bytes != self.l2.line_bytes {
            return Err("all cache levels must share one line size".into());
        }
        if self.cores == 0 {
            return Err("machine must have at least one core".into());
        }
        if !self.contexts.is_multiple_of(self.cores) {
            return Err(format!(
                "contexts ({}) must divide evenly over cores ({})",
                self.contexts, self.cores
            ));
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::table1_somt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_validate() {
        MachineConfig::table1_somt().validate().unwrap();
        MachineConfig::table1_smt().validate().unwrap();
        MachineConfig::table1_superscalar().validate().unwrap();
    }

    #[test]
    fn presets_match_paper_numbers() {
        let c = MachineConfig::table1_somt();
        assert_eq!(c.contexts, 8);
        assert_eq!(c.fetch_width, 16);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.ruu_size, 256);
        assert_eq!(c.lsq_size, 128);
        assert_eq!(c.fus.ialu, 8);
        assert_eq!(c.mem_latency, 200);
        assert_eq!(c.l1d.size_bytes, 8 * 1024);
        assert_eq!(c.l1i.size_bytes, 16 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.death_window, 128);
        assert_eq!(c.context_stack_entries, 16);
        assert_eq!(c.swap_latency, 200);
        assert_eq!(c.swap_load_window, 1000);
        assert_eq!(c.swap_counter_threshold, 256);
    }

    #[test]
    fn superscalar_has_one_context_no_division() {
        let c = MachineConfig::table1_superscalar();
        assert_eq!(c.contexts, 1);
        assert_eq!(c.division_mode, DivisionMode::Never);
    }

    #[test]
    fn throttle_limit_is_half_contexts() {
        assert_eq!(MachineConfig::table1_somt().throttle_death_limit(), 4);
        assert_eq!(MachineConfig::table1_superscalar().throttle_death_limit(), 0);
    }

    #[test]
    fn num_sets_computation() {
        let l1d = CacheParams::table1_l1d();
        assert_eq!(l1d.num_sets(), 8 * 1024 / (64 * 2));
    }

    #[test]
    fn doubled_cache_doubles_size_and_ports() {
        let c = CacheParams::table1_l1d().doubled();
        assert_eq!(c.size_bytes, 16 * 1024);
        assert_eq!(c.ports, 4);
        assert_eq!(c.latency, CacheParams::table1_l1d().latency);
    }

    #[test]
    fn cmp_preset_and_validation() {
        let c = MachineConfig::cmp_somt(4, 2);
        assert_eq!(c.cores, 4);
        assert_eq!(c.contexts, 8);
        c.validate().unwrap();

        let mut bad = MachineConfig::table1_somt();
        bad.cores = 3; // 8 % 3 != 0
        assert!(bad.validate().is_err());
        bad.cores = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = MachineConfig::table1_somt();
        c.contexts = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::table1_somt();
        c.l1d.line_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::table1_somt();
        c.l1d.size_bytes = 1000; // not a multiple of line*assoc
        assert!(c.validate().is_err());

        let mut c = MachineConfig::table1_somt();
        c.l1d.line_bytes = 32; // mismatched line sizes across levels
        c.l1d.size_bytes = 8 * 1024;
        assert!(c.validate().is_err());
    }
}
