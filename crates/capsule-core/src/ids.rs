//! Identifier newtypes shared across the simulator and the runtime.

use std::fmt;

/// Identity of a worker (a component instance, in the paper's vocabulary).
///
/// Worker ids are assigned in birth order starting at 0 for the ancestor of
/// each group, and are never reused within one run. They index into the
/// [`crate::stats::DivisionTree`] genealogy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The ancestor worker of a run (the one started by the loader).
    pub const ANCESTOR: WorkerId = WorkerId(0);

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A physical hardware context slot of the SMT/SOMT processor.
///
/// The paper's baseline machine has 8 of these; a superscalar baseline has 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub u8);

impl ContextId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(WorkerId(3).to_string(), "w3");
        assert_eq!(ContextId(7).to_string(), "ctx7");
    }

    #[test]
    fn ancestor_is_zero() {
        assert_eq!(WorkerId::ANCESTOR.index(), 0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(WorkerId(1) < WorkerId(2));
        assert!(ContextId(0) < ContextId(5));
    }
}
