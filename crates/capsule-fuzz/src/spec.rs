//! Structured program specs and the seeded generator.
//!
//! A [`ProgramSpec`] is a small AST describing a *component-contract*
//! CAP64 program: `ntasks` independent tasks, each reading only its own
//! slice of a read-only input region and writing only its own slice of
//! the output (and scratch) regions, joined through a lock-protected
//! countdown, with exactly one worker — the one that drives the counter
//! to zero — emitting the results in task order and halting.
//!
//! Programs are *well formed by construction*:
//!
//! * all control flow is structured (bounded counted loops, forward
//!   if/else, one backward task/split loop with a strictly decreasing
//!   measure), so every program terminates;
//! * all memory accesses land inside regions the spec sizes, and every
//!   task touches only task-owned slices, so no run can trap and the
//!   final memory image is schedule-independent;
//! * every ALU op is total in CAP64 (division by zero yields −1,
//!   shifts mask their amount), so arbitrary op sequences are safe.
//!
//! The same spec lowers to the paper's three program versions
//! (sequential, statically parallelized, componentized with `nthr`),
//! which lets the differential harness compare architectural results
//! across machine configurations *and* across versions.

use capsule_core::output::Json;
use capsule_core::rng::{Rng, SplitMix64};
use capsule_isa::instr::{AluOp, BrCond, FAluOp, FCmpOp};

/// Number of virtual integer value registers a task body may use.
pub const VBANK: u8 = 6;
/// Number of virtual FP value registers a task body may use.
pub const FBANK: u8 = 4;
/// Maximum loop-nesting depth the generator emits.
pub const MAX_LOOP_DEPTH: u8 = 2;

/// Which of the paper's program versions the spec lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// One worker runs every task.
    Sequential,
    /// `n` loader threads each run a static slice of the tasks.
    Static(u8),
    /// One ancestor worker splits the task range via `nthr`.
    Component,
}

impl Version {
    /// Short name used in artifacts and labels.
    pub fn name(self) -> &'static str {
        match self {
            Version::Sequential => "seq",
            Version::Static(_) => "static",
            Version::Component => "component",
        }
    }

    /// Loader threads this version boots with.
    pub fn threads(self) -> usize {
        match self {
            Version::Static(n) => n as usize,
            _ => 1,
        }
    }
}

/// One operation of a task body over the virtual register banks.
///
/// Integer operands are indices into the `v0..v5` bank, FP operands
/// into `f0..f3`; lowering reduces them modulo the bank size, so any
/// byte is a valid operand. Memory operands name input words and
/// scratch slots of the *current task* only.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `v[dst] = v[a] <op> v[b]`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination bank index.
        dst: u8,
        /// Left operand bank index.
        a: u8,
        /// Right operand bank index.
        b: u8,
    },
    /// `v[dst] = v[a] <op> imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination bank index.
        dst: u8,
        /// Operand bank index.
        a: u8,
        /// Immediate.
        imm: i64,
    },
    /// `v[dst] = input[task][idx]` (read-only region).
    LoadInput {
        /// Destination bank index.
        dst: u8,
        /// Input word index (mod `inputs_per_task`).
        idx: u8,
    },
    /// `v[dst] = scratch[task][slot]`.
    LoadScratch {
        /// Destination bank index.
        dst: u8,
        /// Scratch slot (mod `scratch_per_task`).
        slot: u8,
    },
    /// `scratch[task][slot] = v[src]`.
    Store {
        /// Source bank index.
        src: u8,
        /// Scratch slot (mod `scratch_per_task`).
        slot: u8,
    },
    /// `scratch[task][slot].byte[byte] = low8(v[src])` (`stb`).
    StoreByte {
        /// Source bank index.
        src: u8,
        /// Scratch slot (mod `scratch_per_task`).
        slot: u8,
        /// Byte offset inside the slot (mod 8).
        byte: u8,
    },
    /// `v[dst] = zext(scratch[task][slot].byte[byte])` (`ldb`).
    LoadByte {
        /// Destination bank index.
        dst: u8,
        /// Scratch slot (mod `scratch_per_task`).
        slot: u8,
        /// Byte offset inside the slot (mod 8).
        byte: u8,
    },
    /// `f[dst] = f[a] <op> f[b]`.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination FP bank index.
        dst: u8,
        /// Left operand FP bank index.
        a: u8,
        /// Right operand FP bank index.
        b: u8,
    },
    /// `v[dst] = f[a] <op> f[b]` (FP comparison into the int bank).
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// Destination bank index (integer).
        dst: u8,
        /// Left operand FP bank index.
        a: u8,
        /// Right operand FP bank index.
        b: u8,
    },
    /// `f[dst] = (f64) v[a]`.
    CvtIF {
        /// Destination FP bank index.
        dst: u8,
        /// Source bank index (integer).
        a: u8,
    },
    /// `v[dst] = (i64) f[a]`.
    CvtFI {
        /// Destination bank index (integer).
        dst: u8,
        /// Source FP bank index.
        a: u8,
    },
    /// A counted loop with a bounded trip count.
    Loop {
        /// Trip count (1..=8).
        count: u8,
        /// Loop body.
        body: Vec<Op>,
    },
    /// Structured forward if/else on two bank registers.
    If {
        /// Branch condition.
        cond: BrCond,
        /// Left operand bank index.
        a: u8,
        /// Right operand bank index.
        b: u8,
        /// Taken when the condition holds.
        then_ops: Vec<Op>,
        /// Taken otherwise.
        else_ops: Vec<Op>,
    },
}

impl Op {
    /// Number of ops in this subtree (itself included).
    pub fn weight(&self) -> usize {
        match self {
            Op::Loop { body, .. } => 1 + body.iter().map(Op::weight).sum::<usize>(),
            Op::If { then_ops, else_ops, .. } => {
                1 + then_ops.iter().map(Op::weight).sum::<usize>()
                    + else_ops.iter().map(Op::weight).sum::<usize>()
            }
            _ => 1,
        }
    }
}

/// A complete generated-program description.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Seed this spec was generated from (provenance only).
    pub seed: u64,
    /// Program version to lower to.
    pub version: Version,
    /// Number of independent tasks (≥ 1).
    pub ntasks: u32,
    /// Below this task-range span a component worker stops dividing.
    pub grain: u32,
    /// Read-only input words per task (≥ 1).
    pub inputs_per_task: u32,
    /// Result words per task (≥ 1).
    pub outputs_per_task: u32,
    /// Private scratch words per task (≥ 1).
    pub scratch_per_task: u32,
    /// Task body.
    pub body: Vec<Op>,
    /// Protect the join counter with `mlock`/`munlock`.
    pub use_locks: bool,
    /// Wrap each task in `mark.start`/`mark.end`.
    pub marks: bool,
    /// Seed the FP bank and fold it into the results.
    pub fp: bool,
}

impl ProgramSpec {
    /// Total ops in the task body (tree weight).
    pub fn body_weight(&self) -> usize {
        self.body.iter().map(Op::weight).sum()
    }

    /// True when more than one worker can ever run tasks.
    pub fn parallel(&self) -> bool {
        !matches!(self.version, Version::Sequential)
    }
}

/// Tunables of the generator.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Maximum tasks per program.
    pub max_tasks: u32,
    /// Maximum top-level ops in a task body.
    pub max_body_ops: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams { max_tasks: 24, max_body_ops: 10 }
    }
}

/// Generates a well-formed spec from `seed`.
///
/// The same seed always yields the same spec; the program index of a
/// sweep should be folded into the seed by the caller.
pub fn generate(seed: u64, params: GenParams) -> ProgramSpec {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xca95);
    let version = match rng.u64_below(4) {
        0 => Version::Sequential,
        1 => Version::Static(2 + rng.u64_below(3) as u8),
        _ => Version::Component,
    };
    // Static slices must all be non-empty so exactly one worker drives
    // the join counter to zero (see codegen): keep ntasks ≥ threads.
    let floor = version.threads() as u32;
    let ntasks = floor.max(1 + rng.u64_below(params.max_tasks as u64) as u32);
    let grain = 1 + rng.u64_below(4) as u32;
    let inputs_per_task = 1 + rng.u64_below(4) as u32;
    let outputs_per_task = 1 + rng.u64_below(3) as u32;
    let scratch_per_task = 1 + rng.u64_below(4) as u32;
    let fp = rng.u64_below(3) == 0;
    let nops = 1 + rng.u64_below(params.max_body_ops as u64) as usize;
    let mut body = Vec::with_capacity(nops);
    for _ in 0..nops {
        body.push(gen_op(&mut rng, 0, fp));
    }
    ProgramSpec {
        seed,
        version,
        ntasks,
        grain,
        inputs_per_task,
        outputs_per_task,
        scratch_per_task,
        body,
        use_locks: rng.u64_below(8) != 0,
        marks: rng.u64_below(2) == 0,
        fp,
    }
}

fn gen_op(rng: &mut SplitMix64, depth: u8, fp: bool) -> Op {
    // Structured ops get rarer with depth; leaves dominate.
    let kinds: u64 = if depth < MAX_LOOP_DEPTH { 13 } else { 11 };
    let (dst, a, b) = (rng.u64_below(VBANK as u64) as u8, rng.u64_below(VBANK as u64) as u8, {
        rng.u64_below(VBANK as u64) as u8
    });
    match rng.u64_below(kinds) {
        0 | 1 => {
            let op = AluOp::ALL[rng.u64_below(AluOp::ALL.len() as u64) as usize];
            Op::Alu { op, dst, a, b }
        }
        2 => {
            let op = AluOp::ALL[rng.u64_below(AluOp::ALL.len() as u64) as usize];
            let imm = rng.next_u64() as i64 % 1000;
            Op::AluI { op, dst, a, imm }
        }
        3 => Op::LoadInput { dst, idx: rng.u64_below(8) as u8 },
        4 => Op::LoadScratch { dst, slot: rng.u64_below(8) as u8 },
        5 => Op::Store { src: a, slot: rng.u64_below(8) as u8 },
        6 => {
            let (slot, byte) = (rng.u64_below(8) as u8, rng.u64_below(8) as u8);
            if rng.u64_below(2) == 0 {
                Op::StoreByte { src: a, slot, byte }
            } else {
                Op::LoadByte { dst, slot, byte }
            }
        }
        7 if fp => {
            let op = FAluOp::ALL[rng.u64_below(FAluOp::ALL.len() as u64) as usize];
            let fd = rng.u64_below(FBANK as u64) as u8;
            let (fa, fb) = (rng.u64_below(FBANK as u64) as u8, rng.u64_below(FBANK as u64) as u8);
            Op::FAlu { op, dst: fd, a: fa, b: fb }
        }
        8 if fp => {
            let op = FCmpOp::ALL[rng.u64_below(FCmpOp::ALL.len() as u64) as usize];
            let (fa, fb) = (rng.u64_below(FBANK as u64) as u8, rng.u64_below(FBANK as u64) as u8);
            Op::FCmp { op, dst, a: fa, b: fb }
        }
        9 if fp => {
            if rng.u64_below(2) == 0 {
                Op::CvtIF { dst: rng.u64_below(FBANK as u64) as u8, a }
            } else {
                Op::CvtFI { dst, a: rng.u64_below(FBANK as u64) as u8 }
            }
        }
        7..=10 => {
            let op = AluOp::ALL[rng.u64_below(AluOp::ALL.len() as u64) as usize];
            Op::Alu { op, dst, a, b }
        }
        11 => {
            let count = 1 + rng.u64_below(5) as u8;
            let n = 1 + rng.u64_below(3) as usize;
            let body = (0..n).map(|_| gen_op(rng, depth + 1, fp)).collect();
            Op::Loop { count, body }
        }
        _ => {
            let cond = BrCond::ALL[rng.u64_below(BrCond::ALL.len() as u64) as usize];
            let nt = rng.u64_below(3) as usize;
            let ne = rng.u64_below(3) as usize;
            let then_ops = (0..nt).map(|_| gen_op(rng, depth + 1, fp)).collect();
            let else_ops = (0..ne).map(|_| gen_op(rng, depth + 1, fp)).collect();
            Op::If { cond, a, b, then_ops, else_ops }
        }
    }
}

/// Deterministic input words for a spec (seeded off the spec seed so
/// replays reproduce the data image exactly).
pub fn input_words(spec: &ProgramSpec) -> Vec<i64> {
    let mut rng = SplitMix64::new(spec.seed.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0x1234_5678);
    (0..spec.ntasks as usize * spec.inputs_per_task as usize)
        .map(|_| rng.next_u64() as i64 % 100_000)
        .collect()
}

// --- JSON (de)serialization -------------------------------------------------

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn alu_from(name: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|&op| alu_name(op) == name)
}

fn op_to_json(op: &Op) -> Json {
    let mut o = Json::object();
    match op {
        Op::Alu { op, dst, a, b } => {
            o.push("k", "alu").push("op", alu_name(*op)).push("dst", *dst as u64);
            o.push("a", *a as u64).push("b", *b as u64);
        }
        Op::AluI { op, dst, a, imm } => {
            o.push("k", "alui").push("op", alu_name(*op)).push("dst", *dst as u64);
            o.push("a", *a as u64).push("imm", *imm);
        }
        Op::LoadInput { dst, idx } => {
            o.push("k", "ldin").push("dst", *dst as u64).push("idx", *idx as u64);
        }
        Op::LoadScratch { dst, slot } => {
            o.push("k", "ldscr").push("dst", *dst as u64).push("slot", *slot as u64);
        }
        Op::Store { src, slot } => {
            o.push("k", "st").push("src", *src as u64).push("slot", *slot as u64);
        }
        Op::StoreByte { src, slot, byte } => {
            o.push("k", "stb").push("src", *src as u64).push("slot", *slot as u64);
            o.push("byte", *byte as u64);
        }
        Op::LoadByte { dst, slot, byte } => {
            o.push("k", "ldb").push("dst", *dst as u64).push("slot", *slot as u64);
            o.push("byte", *byte as u64);
        }
        Op::FAlu { op, dst, a, b } => {
            o.push("k", "falu").push("op", op.mnemonic()).push("dst", *dst as u64);
            o.push("a", *a as u64).push("b", *b as u64);
        }
        Op::FCmp { op, dst, a, b } => {
            o.push("k", "fcmp").push("op", op.mnemonic()).push("dst", *dst as u64);
            o.push("a", *a as u64).push("b", *b as u64);
        }
        Op::CvtIF { dst, a } => {
            o.push("k", "cvtif").push("dst", *dst as u64).push("a", *a as u64);
        }
        Op::CvtFI { dst, a } => {
            o.push("k", "cvtfi").push("dst", *dst as u64).push("a", *a as u64);
        }
        Op::Loop { count, body } => {
            o.push("k", "loop").push("count", *count as u64);
            o.push("body", Json::Array(body.iter().map(op_to_json).collect()));
        }
        Op::If { cond, a, b, then_ops, else_ops } => {
            o.push("k", "if").push("cond", cond.mnemonic());
            o.push("a", *a as u64).push("b", *b as u64);
            o.push("then", Json::Array(then_ops.iter().map(op_to_json).collect()));
            o.push("else", Json::Array(else_ops.iter().map(op_to_json).collect()));
        }
    }
    o
}

fn get_u8(j: &Json, key: &str) -> Option<u8> {
    j.get(key)?.as_u64().map(|v| v as u8)
}

fn ops_from_json(j: &Json, key: &str) -> Option<Vec<Op>> {
    j.get(key)?.as_array()?.iter().map(op_from_json).collect()
}

fn op_from_json(j: &Json) -> Option<Op> {
    let kind = j.get("k")?.as_str()?;
    Some(match kind {
        "alu" => Op::Alu {
            op: alu_from(j.get("op")?.as_str()?)?,
            dst: get_u8(j, "dst")?,
            a: get_u8(j, "a")?,
            b: get_u8(j, "b")?,
        },
        "alui" => Op::AluI {
            op: alu_from(j.get("op")?.as_str()?)?,
            dst: get_u8(j, "dst")?,
            a: get_u8(j, "a")?,
            imm: j.get("imm")?.as_i64()?,
        },
        "ldin" => Op::LoadInput { dst: get_u8(j, "dst")?, idx: get_u8(j, "idx")? },
        "ldscr" => Op::LoadScratch { dst: get_u8(j, "dst")?, slot: get_u8(j, "slot")? },
        "st" => Op::Store { src: get_u8(j, "src")?, slot: get_u8(j, "slot")? },
        "stb" => Op::StoreByte {
            src: get_u8(j, "src")?,
            slot: get_u8(j, "slot")?,
            byte: get_u8(j, "byte")?,
        },
        "ldb" => Op::LoadByte {
            dst: get_u8(j, "dst")?,
            slot: get_u8(j, "slot")?,
            byte: get_u8(j, "byte")?,
        },
        "falu" => {
            let name = j.get("op")?.as_str()?;
            Op::FAlu {
                op: FAluOp::ALL.into_iter().find(|op| op.mnemonic() == name)?,
                dst: get_u8(j, "dst")?,
                a: get_u8(j, "a")?,
                b: get_u8(j, "b")?,
            }
        }
        "fcmp" => {
            let name = j.get("op")?.as_str()?;
            Op::FCmp {
                op: FCmpOp::ALL.into_iter().find(|op| op.mnemonic() == name)?,
                dst: get_u8(j, "dst")?,
                a: get_u8(j, "a")?,
                b: get_u8(j, "b")?,
            }
        }
        "cvtif" => Op::CvtIF { dst: get_u8(j, "dst")?, a: get_u8(j, "a")? },
        "cvtfi" => Op::CvtFI { dst: get_u8(j, "dst")?, a: get_u8(j, "a")? },
        "loop" => Op::Loop { count: get_u8(j, "count")?, body: ops_from_json(j, "body")? },
        "if" => {
            let name = j.get("cond")?.as_str()?;
            Op::If {
                cond: BrCond::ALL.into_iter().find(|c| c.mnemonic() == name)?,
                a: get_u8(j, "a")?,
                b: get_u8(j, "b")?,
                then_ops: ops_from_json(j, "then")?,
                else_ops: ops_from_json(j, "else")?,
            }
        }
        _ => return None,
    })
}

impl ProgramSpec {
    /// The spec as a JSON object (artifact format).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("seed", self.seed);
        match self.version {
            Version::Sequential => o.push("version", "seq"),
            Version::Static(n) => o.push("version", format!("static{n}")),
            Version::Component => o.push("version", "component"),
        };
        o.push("ntasks", self.ntasks)
            .push("grain", self.grain)
            .push("inputs_per_task", self.inputs_per_task)
            .push("outputs_per_task", self.outputs_per_task)
            .push("scratch_per_task", self.scratch_per_task)
            .push("use_locks", self.use_locks)
            .push("marks", self.marks)
            .push("fp", self.fp)
            .push("body", Json::Array(self.body.iter().map(op_to_json).collect()));
        o
    }

    /// Rebuilds a spec from [`ProgramSpec::to_json`] output.
    pub fn from_json(j: &Json) -> Option<ProgramSpec> {
        let vname = j.get("version")?.as_str()?;
        let version = match vname {
            "seq" => Version::Sequential,
            "component" => Version::Component,
            _ => Version::Static(vname.strip_prefix("static")?.parse().ok()?),
        };
        Some(ProgramSpec {
            seed: j.get("seed")?.as_u64()?,
            version,
            ntasks: j.get("ntasks")?.as_u64()? as u32,
            grain: j.get("grain")?.as_u64()? as u32,
            inputs_per_task: j.get("inputs_per_task")?.as_u64()? as u32,
            outputs_per_task: j.get("outputs_per_task")?.as_u64()? as u32,
            scratch_per_task: j.get("scratch_per_task")?.as_u64()? as u32,
            body: ops_from_json(j, "body")?,
            use_locks: j.get("use_locks")?.as_bool()?,
            marks: j.get("marks")?.as_bool()?,
            fp: j.get("fp")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, GenParams::default());
        let b = generate(7, GenParams::default());
        assert_eq!(a, b);
        let c = generate(8, GenParams::default());
        assert_ne!(a, c);
    }

    #[test]
    fn static_versions_never_outnumber_tasks() {
        for seed in 0..200 {
            let s = generate(seed, GenParams::default());
            if let Version::Static(n) = s.version {
                assert!(s.ntasks >= n as u32, "seed {seed}: {n} threads, {} tasks", s.ntasks);
            }
            assert!(s.ntasks >= 1);
            assert!(s.body_weight() >= 1);
        }
    }

    #[test]
    fn spec_json_round_trips() {
        for seed in 0..100 {
            let s = generate(seed, GenParams::default());
            let j = s.to_json();
            let parsed = Json::parse(&j.to_string_compact()).unwrap();
            let back = ProgramSpec::from_json(&parsed).expect("spec should parse back");
            assert_eq!(s, back, "seed {seed}");
        }
    }

    #[test]
    fn input_words_match_spec_dimensions() {
        let s = generate(3, GenParams::default());
        let words = input_words(&s);
        assert_eq!(words.len(), (s.ntasks * s.inputs_per_task) as usize);
        assert_eq!(words, input_words(&s));
    }
}
