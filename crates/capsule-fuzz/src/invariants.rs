//! Reusable [`SimStats`] / [`SimOutcome`] invariant checks.
//!
//! Two layers of checking, shared by the fuzz harness and unit tests:
//!
//! * [`check_outcome`] — internal consistency of one run against its
//!   machine configuration (pipeline counter ordering, division
//!   accounting, genealogy/stat agreement);
//! * [`check_cross_config`] — what must agree between two runs of the
//!   *same program* on *different* machines (division bookkeeping is
//!   policy-dependent, architectural results are not; committed counts
//!   only have a config-independent floor).
//!
//! Every violation is reported as a human-readable string so harness
//! artifacts and test failures read the same.

use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_core::stats::SimStats;
use capsule_sim::SimOutcome;

fn ensure(violations: &mut Vec<String>, ok: bool, msg: impl FnOnce() -> String) {
    if !ok {
        violations.push(msg());
    }
}

/// Checks one outcome against the machine that produced it. Returns all
/// violations found (empty = consistent).
pub fn check_outcome(cfg: &MachineConfig, outcome: &SimOutcome) -> Vec<String> {
    let s = &outcome.stats;
    let mut v = Vec::new();

    // Pipeline ordering: nothing retires without being dispatched, and
    // nothing is dispatched without being fetched.
    ensure(&mut v, s.committed <= s.dispatched, || {
        format!("committed {} > dispatched {}", s.committed, s.dispatched)
    });
    ensure(&mut v, s.dispatched <= s.fetched, || {
        format!("dispatched {} > fetched {}", s.dispatched, s.fetched)
    });
    ensure(&mut v, s.branch_mispredicts <= s.branches, || {
        format!("mispredicts {} > branches {}", s.branch_mispredicts, s.branches)
    });
    ensure(&mut v, s.committed > 0, || "halted run committed nothing".into());

    // Division accounting: every request is granted or denied, exactly
    // once, and denial reasons match the configured policy.
    let denied =
        s.divisions_denied_no_resource + s.divisions_denied_throttled + s.divisions_denied_disabled;
    ensure(&mut v, s.divisions_granted() + denied == s.divisions_requested, || {
        format!(
            "division requests {} != granted {} + denied {}",
            s.divisions_requested,
            s.divisions_granted(),
            denied
        )
    });
    match cfg.division_mode {
        DivisionMode::Never => {
            ensure(&mut v, s.divisions_granted() == 0, || {
                format!("division disabled but {} grants", s.divisions_granted())
            });
            ensure(
                &mut v,
                s.divisions_denied_no_resource == 0 && s.divisions_denied_throttled == 0,
                || "division disabled but saw resource/throttle denials".into(),
            );
        }
        DivisionMode::Greedy => {
            ensure(&mut v, s.divisions_denied_throttled == 0, || {
                format!("greedy policy but {} throttle denials", s.divisions_denied_throttled)
            });
            ensure(&mut v, s.divisions_denied_disabled == 0, || {
                "division enabled but saw disabled denials".into()
            });
        }
        DivisionMode::GreedyThrottled => {
            ensure(&mut v, s.divisions_denied_disabled == 0, || {
                "division enabled but saw disabled denials".into()
            });
        }
    }
    if !cfg.allow_divide_to_stack {
        ensure(&mut v, s.divisions_granted_stack == 0, || {
            format!("divide-to-stack disabled but {} stack grants", s.divisions_granted_stack)
        });
    }

    // Swap and occupancy bounds. A thread can only be swapped in after
    // being swapped out — or after being *born* on the context stack.
    ensure(&mut v, s.swaps_in <= s.swaps_out + s.divisions_granted_stack, || {
        format!(
            "swaps_in {} > swaps_out {} + stack births {}",
            s.swaps_in, s.swaps_out, s.divisions_granted_stack
        )
    });
    ensure(&mut v, s.active_context_cycles <= s.cycles.saturating_mul(cfg.contexts as u64), || {
        format!(
            "active_context_cycles {} > cycles {} x contexts {}",
            s.active_context_cycles, s.cycles, cfg.contexts
        )
    });
    let capacity = (cfg.contexts + cfg.context_stack_entries) as u64;
    ensure(&mut v, s.max_live_workers <= capacity, || {
        format!("max_live_workers {} > contexts+stack {capacity}", s.max_live_workers)
    });
    ensure(&mut v, s.lock_stalls > 0 || s.lock_stall_cycles == 0, || {
        format!("{} lock-stall cycles without any lock stall", s.lock_stall_cycles)
    });

    // Genealogy must agree with the counters: every grant is a birth
    // (plus the loader-created roots), every committed kthr a death.
    let tree = &outcome.tree;
    let roots = tree.nodes().iter().filter(|n| n.parent.is_none()).count() as u64;
    let born = tree.len() as u64 - roots;
    ensure(&mut v, born == s.divisions_granted(), || {
        format!("tree has {born} non-root births, stats granted {}", s.divisions_granted())
    });
    let dead = tree.nodes().iter().filter(|n| n.death_cycle.is_some()).count() as u64;
    ensure(&mut v, dead == s.deaths, || {
        format!("tree has {dead} deaths, stats counted {}", s.deaths)
    });
    for n in tree.nodes() {
        if let Some(p) = n.parent {
            let parent = &tree.nodes()[p.index()];
            ensure(&mut v, parent.birth_cycle <= n.birth_cycle, || {
                format!("worker {:?} born at {} before parent at {}", n.id, n.birth_cycle, {
                    parent.birth_cycle
                })
            });
        }
        if let Some(d) = n.death_cycle {
            ensure(&mut v, n.birth_cycle <= d && d <= s.cycles, || {
                format!("worker {:?} death cycle {d} outside [{}, {}]", n.id, n.birth_cycle, {
                    s.cycles
                })
            });
        }
    }
    ensure(&mut v, (s.max_live_workers as usize) <= tree.len().max(1), || {
        format!("max_live_workers {} exceeds workers ever born {}", s.max_live_workers, tree.len())
    });

    v
}

/// Checks what two runs of the same program on different machines must
/// agree on. `floor_committed` is the committed-instruction count of a
/// division-free run (superscalar); machines that divide retire at least
/// as much (division duplicates no useful work but denied probes rerun
/// ranges undivided, never less).
pub fn check_cross_config(label_a: &str, a: &SimStats, label_b: &str, b: &SimStats) -> Vec<String> {
    let mut v = Vec::new();
    // Neither machine may observe more division requests than the other
    // executes nthr instructions... requests are per committed nthr, so
    // a division-free program must agree exactly.
    if a.divisions_requested == 0 && b.divisions_requested == 0 {
        ensure(&mut v, a.committed == b.committed, || {
            format!(
                "division-free program retired {} on {label_a} but {} on {label_b}",
                a.committed, b.committed
            )
        });
    }
    ensure(&mut v, (a.committed > 0) == (b.committed > 0), || {
        format!("one of {label_a}/{label_b} retired nothing")
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::spec::{generate, GenParams, Version};
    use capsule_sim::Machine;

    fn run(cfg: MachineConfig, spec_seed: u64) -> (MachineConfig, SimOutcome) {
        let spec = generate(spec_seed, GenParams::default());
        let p = build(&spec).unwrap();
        let mut m = Machine::new(cfg.clone(), &p).unwrap();
        (cfg, m.run(200_000_000).unwrap())
    }

    #[test]
    fn presets_satisfy_outcome_invariants() {
        for seed in [2, 5, 11] {
            let spec = generate(seed, GenParams::default());
            let somt = run(MachineConfig::table1_somt(), seed);
            assert_eq!(check_outcome(&somt.0, &somt.1), Vec::<String>::new(), "somt seed {seed}");
            let smt = run(MachineConfig::table1_smt(), seed);
            assert_eq!(check_outcome(&smt.0, &smt.1), Vec::<String>::new(), "smt seed {seed}");
            if spec.version.threads() == 1 {
                let ss = run(MachineConfig::table1_superscalar(), seed);
                assert_eq!(check_outcome(&ss.0, &ss.1), Vec::<String>::new(), "ss seed {seed}");
            }
        }
    }

    #[test]
    fn division_free_programs_retire_identically_across_machines() {
        // Sequential programs run the same instruction stream under every
        // machine; retired-instruction counts must agree exactly.
        let mut checked = 0;
        for seed in 0..40 {
            let spec = generate(seed, GenParams::default());
            if spec.version != Version::Sequential {
                continue;
            }
            let ss = run(MachineConfig::table1_superscalar(), seed);
            let smt = run(MachineConfig::table1_smt(), seed);
            let somt = run(MachineConfig::table1_somt(), seed);
            assert_eq!(
                check_cross_config("superscalar", &ss.1.stats, "smt", &smt.1.stats),
                Vec::<String>::new(),
                "seed {seed}"
            );
            assert_eq!(
                check_cross_config("smt", &smt.1.stats, "somt", &somt.1.stats),
                Vec::<String>::new(),
                "seed {seed}"
            );
            checked += 1;
        }
        assert!(checked >= 3, "generator produced too few sequential programs");
    }

    #[test]
    fn violations_are_reported() {
        let (cfg, mut outcome) = run(MachineConfig::table1_somt(), 2);
        outcome.stats.dispatched = outcome.stats.committed.saturating_sub(1);
        let v = check_outcome(&cfg, &outcome);
        assert!(v.iter().any(|m| m.contains("committed")), "got {v:?}");

        let mut a = SimStats::new();
        a.committed = 10;
        let mut b = SimStats::new();
        b.committed = 12;
        let v = check_cross_config("a", &a, "b", &b);
        assert!(v.iter().any(|m| m.contains("retired")), "got {v:?}");
    }
}
