//! The embedded regression corpus.
//!
//! Every minimized artifact checked into `crates/capsule-fuzz/corpus/`
//! is compiled into the crate with `include_str!`, so corpus replay
//! needs no filesystem access and runs identically in tests, the
//! `fuzz_regress` bench entry and CI. Replay semantics: rebuild the
//! program from the embedded spec, sweep the recorded matrix, and
//! require no divergence.

use crate::artifact::Artifact;
use crate::harness::Divergence;

/// Checked-in corpus entries as `(file name, JSON document)` pairs.
pub const CORPUS: &[(&str, &str)] = &[
    ("near-miss-division.json", include_str!("../corpus/near-miss-division.json")),
    ("near-miss-static-join.json", include_str!("../corpus/near-miss-static-join.json")),
    ("near-miss-checkpoint-live.json", include_str!("../corpus/near-miss-checkpoint-live.json")),
];

/// Parses every embedded corpus document.
///
/// # Panics
///
/// Panics on a malformed embedded document — the corpus is part of the
/// source tree, so a parse failure is a build defect, not input error.
pub fn load() -> Vec<(&'static str, Artifact)> {
    CORPUS
        .iter()
        .map(|(name, doc)| {
            let artifact =
                Artifact::parse(doc).unwrap_or_else(|| panic!("corpus entry {name} is malformed"));
            (*name, artifact)
        })
        .collect()
}

/// Replays the whole embedded corpus, returning any divergence per
/// entry. A clean tree returns only `None`s.
pub fn replay_all() -> Vec<(&'static str, Option<Divergence>)> {
    load()
        .into_iter()
        .map(|(name, artifact)| {
            let d = artifact
                .replay()
                .unwrap_or_else(|e| panic!("corpus entry {name} no longer builds: {e}"));
            (name, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_replays_clean() {
        let entries = load();
        assert!(!entries.is_empty(), "corpus must ship at least the near-miss programs");
        for (name, d) in replay_all() {
            assert!(d.is_none(), "corpus entry {name} diverged: {d:?}");
        }
    }
}
