//! The differential config matrix.
//!
//! A [`MatrixPoint`] is one way to run a program: a machine
//! configuration (superscalar / SMT / SOMT presets with division-policy
//! variations) crossed with an execution mode (fresh machine, warmed
//! [`capsule_sim::WarmMachine`] reuse, checkpoint/restore at a cycle
//! boundary, decode cache disabled). All points of a matrix must agree
//! on architectural results for every generated program.

use capsule_core::config::{DivisionMode, MachineConfig};

use crate::spec::{ProgramSpec, Version};

/// How a matrix point executes the program, beyond its machine config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// A fresh [`capsule_sim::Machine`] per run.
    Fresh,
    /// Reuse a warmed machine via `Machine::reset`.
    Warm,
    /// Pause at `numer/denom` of the baseline run's cycles, snapshot,
    /// restore into a fresh machine, and finish there.
    Checkpoint {
        /// Fraction numerator.
        numer: u32,
        /// Fraction denominator.
        denom: u32,
    },
    /// Run fresh with the global decode cache disabled.
    NoDecodeCache,
}

impl ExecMode {
    /// Short name used in point labels.
    pub fn name(self) -> String {
        match self {
            ExecMode::Fresh => "fresh".into(),
            ExecMode::Warm => "warm".into(),
            ExecMode::Checkpoint { numer, denom } => format!("ckpt{numer}of{denom}"),
            ExecMode::NoDecodeCache => "nodecode".into(),
        }
    }
}

/// One run configuration of the differential matrix.
#[derive(Debug, Clone)]
pub struct MatrixPoint {
    /// Unique label, e.g. `somt-throttled+ckpt1of2`.
    pub name: String,
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// Execution mode.
    pub exec: ExecMode,
}

impl MatrixPoint {
    fn new(base: &str, cfg: MachineConfig, exec: ExecMode) -> Self {
        MatrixPoint { name: format!("{base}+{}", exec.name()), cfg, exec }
    }
}

fn somt(mode: DivisionMode) -> MachineConfig {
    MachineConfig { division_mode: mode, ..MachineConfig::table1_somt() }
}

/// Which matrix to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matrix {
    /// CI-sized: the three presets plus one checkpoint, warm and
    /// decode-cache leg.
    Reduced,
    /// Everything: division-policy variants, divide-to-stack off, both
    /// checkpoint fractions, per-config warm legs.
    Full,
}

impl Matrix {
    /// Parses `reduced` / `full`.
    pub fn parse(s: &str) -> Option<Matrix> {
        match s {
            "reduced" => Some(Matrix::Reduced),
            "full" => Some(Matrix::Full),
            _ => None,
        }
    }

    /// Name for artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Matrix::Reduced => "reduced",
            Matrix::Full => "full",
        }
    }

    /// The points of this matrix.
    pub fn points(self) -> Vec<MatrixPoint> {
        let ss = MachineConfig::table1_superscalar;
        let smt = MachineConfig::table1_smt;
        let mut pts = vec![
            MatrixPoint::new("superscalar", ss(), ExecMode::Fresh),
            MatrixPoint::new("smt", smt(), ExecMode::Fresh),
            MatrixPoint::new("somt-throttled", somt(DivisionMode::GreedyThrottled), {
                ExecMode::Fresh
            }),
            MatrixPoint::new("somt-greedy", somt(DivisionMode::Greedy), ExecMode::Fresh),
            MatrixPoint::new("somt-throttled", somt(DivisionMode::GreedyThrottled), {
                ExecMode::Checkpoint { numer: 1, denom: 2 }
            }),
            MatrixPoint::new("somt-throttled", somt(DivisionMode::GreedyThrottled), {
                ExecMode::Warm
            }),
            MatrixPoint::new("smt", smt(), ExecMode::NoDecodeCache),
        ];
        if self == Matrix::Full {
            let nostack = MachineConfig {
                allow_divide_to_stack: false,
                ..somt(DivisionMode::GreedyThrottled)
            };
            let impatient =
                MachineConfig { death_window: 16, ..somt(DivisionMode::GreedyThrottled) };
            pts.extend([
                MatrixPoint::new("somt-nostack", nostack, ExecMode::Fresh),
                MatrixPoint::new("somt-window16", impatient, ExecMode::Fresh),
                MatrixPoint::new("somt-greedy", somt(DivisionMode::Greedy), ExecMode::Warm),
                MatrixPoint::new("somt-greedy", somt(DivisionMode::Greedy), {
                    ExecMode::Checkpoint { numer: 1, denom: 3 }
                }),
                MatrixPoint::new("somt-throttled", somt(DivisionMode::GreedyThrottled), {
                    ExecMode::Checkpoint { numer: 2, denom: 3 }
                }),
                MatrixPoint::new("somt-throttled", somt(DivisionMode::GreedyThrottled), {
                    ExecMode::NoDecodeCache
                }),
                MatrixPoint::new("smt", smt(), ExecMode::Checkpoint { numer: 1, denom: 2 }),
                MatrixPoint::new("superscalar", ss(), ExecMode::Warm),
            ]);
        }
        pts
    }

    /// Matrix points applicable to `spec` (a static version with `n`
    /// loader threads cannot boot on machines with fewer contexts).
    pub fn points_for(self, spec: &ProgramSpec) -> Vec<MatrixPoint> {
        let threads = match spec.version {
            Version::Static(n) => n as usize,
            _ => 1,
        };
        self.points().into_iter().filter(|p| p.cfg.contexts >= threads).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenParams};

    #[test]
    fn matrices_have_unique_names_and_valid_configs() {
        for m in [Matrix::Reduced, Matrix::Full] {
            let pts = m.points();
            for p in &pts {
                p.cfg.validate().unwrap();
            }
            let mut names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate point names in {m:?}");
        }
        assert!(Matrix::Full.points().len() > Matrix::Reduced.points().len());
    }

    #[test]
    fn static_specs_skip_single_context_machines() {
        let mut spec = generate(0, GenParams::default());
        spec.version = Version::Static(4);
        spec.ntasks = spec.ntasks.max(4);
        let pts = Matrix::Reduced.points_for(&spec);
        assert!(pts.iter().all(|p| p.cfg.contexts >= 4));
        assert!(pts.len() < Matrix::Reduced.points().len());
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(Matrix::parse("reduced"), Some(Matrix::Reduced));
        assert_eq!(Matrix::parse("full"), Some(Matrix::Full));
        assert_eq!(Matrix::parse("bogus"), None);
        assert_eq!(Matrix::parse(Matrix::Full.name()), Some(Matrix::Full));
    }
}
