//! Seeded differential fuzzing of the CAPSULE simulator.
//!
//! Usage:
//!   capsule-fuzz [--seed S] [--count N] [--budget CYCLES]
//!                [--matrix reduced|full] [--no-minimize] [--out DIR]
//!   capsule-fuzz --replay PATH [--replay PATH ...]
//!   capsule-fuzz --emit-near-misses DIR
//!
//! The default mode sweeps seeds `S..S+N`: each seed generates a
//! well-formed CAP64 program that is run across every matrix point and
//! the reference interpreter, requiring identical architectural
//! results. Divergences are delta-debugged to a minimal spec and
//! written as replayable JSON artifacts under `--out` (default
//! `fuzz-artifacts/`); the exit code is 1 when any divergence was
//! found, so CI fails loudly with the artifact path on stdout.
//!
//! `--replay` re-checks saved artifacts (files or directories);
//! `--emit-near-misses` regenerates the checked-in near-miss corpus
//! (minimized programs that pin matrix edge cases without diverging).

use std::path::{Path, PathBuf};
use std::process::exit;

use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_fuzz::{
    build, generate, minimize, Artifact, Harness, Matrix, ProgramSpec, SweepOptions, Version,
};
use capsule_sim::{Machine, SimOutcome};

fn main() {
    let mut opts = SweepOptions::new(1, 20);
    let mut out = PathBuf::from("fuzz-artifacts");
    let mut replays: Vec<PathBuf> = Vec::new();
    let mut emit_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_u64(&value("--seed"), "--seed"),
            "--count" => opts.count = parse_u64(&value("--count"), "--count"),
            "--budget" => opts.budget = parse_u64(&value("--budget"), "--budget").max(1),
            "--matrix" => {
                let v = value("--matrix");
                opts.matrix = Matrix::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown matrix {v:?} (reduced|full)");
                    exit(2);
                });
            }
            "--minimize" => opts.minimize = true,
            "--no-minimize" => opts.minimize = false,
            "--out" => out = PathBuf::from(value("--out")),
            "--replay" => replays.push(PathBuf::from(value("--replay"))),
            "--emit-near-misses" => emit_dir = Some(PathBuf::from(value("--emit-near-misses"))),
            "--help" | "-h" => {
                println!(
                    "usage: capsule-fuzz [--seed S] [--count N] [--budget CYCLES] \
                     [--matrix reduced|full] [--no-minimize] [--out DIR] | \
                     --replay PATH ... | --emit-near-misses DIR"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }

    if let Some(dir) = emit_dir {
        emit_near_misses(&dir);
        return;
    }
    if !replays.is_empty() {
        replay(&replays);
        return;
    }

    let report = capsule_fuzz::sweep(&opts, None);
    let versions: Vec<String> =
        report.version_counts.iter().map(|(n, c)| format!("{n} {c}")).collect();
    println!(
        "checked {} programs (seed {}..{}, matrix {}, {} points): {}",
        report.programs,
        opts.seed,
        opts.seed + opts.count,
        opts.matrix.name(),
        opts.matrix.points().len(),
        versions.join(", ")
    );
    if report.divergences.is_empty() {
        println!("no divergences");
        return;
    }
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create artifact dir {}: {e}", out.display());
        exit(1);
    }
    for artifact in &report.divergences {
        let path = out.join(artifact.file_name());
        match artifact.to_json() {
            Ok(doc) => {
                if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
                    eprintln!("cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("artifact for seed {} no longer builds: {e}", artifact.seed),
        }
        println!(
            "DIVERGENCE seed {} [{}] {} vs {}: {} -> {}",
            artifact.seed,
            artifact.kind,
            artifact.pair.0,
            artifact.pair.1,
            artifact.detail,
            path.display()
        );
    }
    exit(1);
}

fn parse_u64(s: &str, name: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{name} expects an unsigned integer, got {s:?}");
        exit(2);
    })
}

/// Replays saved artifacts (files or directories of `.json` files).
fn replay(paths: &[PathBuf]) {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(p) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|e| e == "json"))
                    .collect(),
                Err(e) => {
                    eprintln!("cannot read {}: {e}", p.display());
                    exit(2);
                }
            };
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.clone());
        }
    }
    let mut failed = false;
    for file in &files {
        let doc = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", file.display());
            exit(2);
        });
        let artifact = Artifact::parse(&doc).unwrap_or_else(|| {
            eprintln!("{} is not a capsule-fuzz artifact", file.display());
            exit(2);
        });
        match artifact.replay() {
            Ok(None) => println!("replay {}: ok", file.display()),
            Ok(Some(d)) => {
                println!(
                    "replay {}: DIVERGENCE [{}] {} vs {}: {}",
                    file.display(),
                    d.kind,
                    d.a,
                    d.b,
                    d.detail
                );
                failed = true;
            }
            Err(e) => {
                println!("replay {}: BUILD ERROR {e}", file.display());
                failed = true;
            }
        }
    }
    println!("replayed {} artifacts", files.len());
    if failed {
        exit(1);
    }
}

// --- near-miss corpus generation -------------------------------------------

fn somt(mode: DivisionMode) -> MachineConfig {
    MachineConfig { division_mode: mode, ..MachineConfig::table1_somt() }
}

fn run_on(spec: &ProgramSpec, cfg: MachineConfig) -> Option<SimOutcome> {
    let program = build(spec).ok()?;
    let mut m = Machine::new(cfg, &program).ok()?;
    m.run(capsule_fuzz::DEFAULT_BUDGET).ok()
}

/// Regenerates the three checked-in near-miss corpus entries: programs
/// minimized while *preserving* a matrix edge (division grants, a
/// multi-thread locked join, live workers at the checkpoint boundary)
/// rather than a divergence. They replay clean and act as sentinels for
/// the paths a future simulator bug would most plausibly break.
fn emit_near_misses(dir: &Path) {
    struct Edge {
        file: &'static str,
        detail: &'static str,
        holds: fn(&ProgramSpec) -> bool,
    }
    let edges = [
        Edge {
            file: "near-miss-division.json",
            detail: "component program whose nthr probes are granted under somt-greedy",
            holds: |spec| {
                spec.version == Version::Component
                    && run_on(spec, somt(DivisionMode::Greedy))
                        .is_some_and(|o| o.stats.divisions_granted() > 0)
            },
        },
        Edge {
            file: "near-miss-static-join.json",
            detail: "static program joining >=2 loader threads through the locked counter",
            holds: |spec| {
                matches!(spec.version, Version::Static(n) if n >= 2)
                    && spec.use_locks
                    && run_on(spec, MachineConfig::table1_smt()).is_some_and(|o| {
                        o.stats.max_live_workers >= 2 && o.stats.lock_acquires >= 2
                    })
            },
        },
        Edge {
            file: "near-miss-checkpoint-live.json",
            detail: "marked program with >=3 live workers at the ckpt1of2 snapshot boundary",
            holds: |spec| {
                spec.marks
                    && run_on(spec, somt(DivisionMode::GreedyThrottled))
                        .is_some_and(|o| o.tree.live_at(o.stats.cycles / 2) >= 3)
            },
        },
    ];

    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        exit(1);
    }
    for edge in &edges {
        let seed_spec = (0..500)
            .map(|s| generate(s, capsule_fuzz::GenParams::default()))
            .find(|spec| (edge.holds)(spec))
            .unwrap_or_else(|| {
                eprintln!("no seed in 0..500 exercises edge {:?}", edge.file);
                exit(1);
            });
        let (min_spec, stats) = minimize(&seed_spec, &mut |c| (edge.holds)(c));
        match Harness::new(Matrix::Reduced).run_spec(&min_spec) {
            Ok(None) => {}
            Ok(Some(d)) => {
                eprintln!("near-miss {} DIVERGES (a real bug?): {d:?}", edge.file);
                exit(1);
            }
            Err(e) => {
                eprintln!("near-miss {} stopped building: {e}", edge.file);
                exit(1);
            }
        }
        let artifact = Artifact::near_miss(&min_spec, Matrix::Reduced, edge.detail);
        let path = dir.join(edge.file);
        let doc = artifact.to_json().expect("minimized spec must build").to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
        let instrs = build(&min_spec).map(|p| p.text.len()).unwrap_or(0);
        println!(
            "near-miss {} <- seed {} ({} instrs, {} shrink attempts)",
            path.display(),
            min_spec.seed,
            instrs,
            stats.attempts
        );
    }
}
