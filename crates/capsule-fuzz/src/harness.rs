//! The differential harness.
//!
//! Runs one generated program across every applicable [`MatrixPoint`]
//! and checks four properties:
//!
//! 1. **Toolchain round trip** — the program survives
//!    text → disassemble → parse and text → encode → decode unchanged;
//! 2. **Reference agreement** — every machine run reproduces the
//!    functional interpreter's output and final memory image;
//! 3. **Cross-point agreement** — all matrix points produce the same
//!    architectural digest (output stream bits + memory hash), and
//!    checkpoint legs reproduce their uninterrupted run *exactly*
//!    (full [`SimOutcome`] equality);
//! 4. **Stats invariants** — every outcome passes
//!    [`crate::invariants::check_outcome`], and division-free pairs pass
//!    [`crate::invariants::check_cross_config`].
//!
//! On a mismatch the harness reports a [`Divergence`] naming the two
//! disagreeing points; for same-config pairs it re-runs both legs with
//! tracing enabled and localizes the first divergent trace event.

use capsule_core::codec::{fnv1a64, Writer};
use capsule_isa::program::Program;
use capsule_isa::{decode, encode, text};
use capsule_sim::{
    Interp, InterpConfig, Machine, Memory, OutValue, SimError, SimOutcome, WarmMachine,
};

use crate::codegen::{build, BuildError};
use crate::invariants::{check_cross_config, check_outcome};
use crate::matrix::{ExecMode, Matrix, MatrixPoint};
use crate::spec::ProgramSpec;

/// Default per-run cycle budget; generated programs finish orders of
/// magnitude earlier, so hitting it means a scheduling bug (reported as
/// a divergence, not a silent skip).
pub const DEFAULT_BUDGET: u64 = 20_000_000;

/// Architectural result of one run: the `out`/`outf` stream (floats as
/// raw bits, so NaN compares deterministically) and an FNV-1a hash of
/// the final data-memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchDigest {
    /// `(tag, bits)` per output value; tag 0 = int, 1 = float.
    pub output: Vec<(u8, u64)>,
    /// FNV-1a 64 over the final memory image.
    pub mem_fnv: u64,
}

impl ArchDigest {
    fn new(output: &[OutValue], mem: &Memory) -> ArchDigest {
        let output = output
            .iter()
            .map(|v| match v {
                OutValue::Int(i) => (0, *i as u64),
                OutValue::Float(f) => (1, f.to_bits()),
            })
            .collect();
        let mut w = Writer::new();
        mem.encode(&mut w);
        ArchDigest { output, mem_fnv: fnv1a64(&w.into_bytes()) }
    }

    fn describe_mismatch(&self, other: &ArchDigest) -> String {
        if self.output != other.output {
            let idx = self
                .output
                .iter()
                .zip(&other.output)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| self.output.len().min(other.output.len()));
            format!(
                "output mismatch at value {idx}: {:?} vs {:?} (lengths {} / {})",
                self.output.get(idx),
                other.output.get(idx),
                self.output.len(),
                other.output.len()
            )
        } else {
            format!("memory digest mismatch: {:016x} vs {:016x}", self.mem_fnv, other.mem_fnv)
        }
    }
}

/// A detected disagreement between two ways of running one program.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// What kind of property failed (`arch`, `checkpoint`, `invariant`,
    /// `interp`, `roundtrip`, `sim-error`, `cross-config`).
    pub kind: String,
    /// First disagreeing party (a matrix-point name, or `interp` /
    /// `roundtrip`).
    pub a: String,
    /// Second disagreeing party.
    pub b: String,
    /// Human-readable description.
    pub detail: String,
    /// Cycle of the first differing trace event, when the two parties
    /// share a machine config and could be trace-diffed.
    pub first_divergent_cycle: Option<u64>,
}

/// Test-only hook: corrupts a digest after a run, simulating a
/// simulator bug visible in architectural results. Used to
/// mutation-test the harness and minimizer without planting a bug in
/// the simulator itself.
pub type FaultFn = fn(&MatrixPoint, &mut ArchDigest);

/// Differential runner over one [`Matrix`].
pub struct Harness {
    /// Cycle budget per run.
    pub budget: u64,
    /// The matrix to sweep.
    pub matrix: Matrix,
    /// Also compare against the functional reference interpreter.
    pub check_interp: bool,
    /// Digest-corruption hook for mutation tests.
    pub fault: Option<FaultFn>,
    warm: WarmMachine,
}

impl Harness {
    /// A harness over `matrix` with default budget.
    pub fn new(matrix: Matrix) -> Harness {
        Harness {
            budget: DEFAULT_BUDGET,
            matrix,
            check_interp: true,
            fault: None,
            warm: WarmMachine::new(),
        }
    }

    /// Builds and checks one spec. `Ok(None)` means all points agreed.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the spec itself cannot be lowered (a
    /// generator or minimizer bug, not a simulator one).
    pub fn run_spec(&mut self, spec: &ProgramSpec) -> Result<Option<Divergence>, BuildError> {
        let program = build(spec)?;

        if let Some(detail) = round_trip_violation(&program) {
            return Ok(Some(Divergence {
                kind: "roundtrip".into(),
                a: "asm".into(),
                b: "text/encode".into(),
                detail,
                first_divergent_cycle: None,
            }));
        }

        let reference = if self.check_interp {
            match interp_digest(&program) {
                Ok(d) => Some(d),
                Err(e) => {
                    return Ok(Some(Divergence {
                        kind: "sim-error".into(),
                        a: "interp".into(),
                        b: String::new(),
                        detail: e,
                        first_divergent_cycle: None,
                    }))
                }
            }
        } else {
            None
        };

        let points = self.matrix.points_for(spec);
        let mut baseline: Option<(String, ArchDigest, SimOutcome)> = None;
        for point in &points {
            let (digest, outcome) = match self.run_point(&program, point) {
                Ok(r) => r,
                Err(d) => return Ok(Some(d)),
            };
            let mut digest = digest;
            if let Some(fault) = self.fault {
                fault(point, &mut digest);
            }

            let violations = check_outcome(&point.cfg, &outcome);
            if !violations.is_empty() {
                return Ok(Some(Divergence {
                    kind: "invariant".into(),
                    a: point.name.clone(),
                    b: String::new(),
                    detail: violations.join("; "),
                    first_divergent_cycle: None,
                }));
            }

            if let Some(reference) = &reference {
                if digest != *reference {
                    return Ok(Some(Divergence {
                        kind: "interp".into(),
                        a: point.name.clone(),
                        b: "interp".into(),
                        detail: reference.describe_mismatch(&digest),
                        first_divergent_cycle: None,
                    }));
                }
            }

            match &baseline {
                None => baseline = Some((point.name.clone(), digest, outcome)),
                Some((base_name, base_digest, base_outcome)) => {
                    if digest != *base_digest {
                        let cycle = self.localize(&program, &points, point);
                        return Ok(Some(Divergence {
                            kind: "arch".into(),
                            a: base_name.clone(),
                            b: point.name.clone(),
                            detail: base_digest.describe_mismatch(&digest),
                            first_divergent_cycle: cycle,
                        }));
                    }
                    let cross = check_cross_config(
                        base_name,
                        &base_outcome.stats,
                        &point.name,
                        &outcome.stats,
                    );
                    if !cross.is_empty() {
                        return Ok(Some(Divergence {
                            kind: "cross-config".into(),
                            a: base_name.clone(),
                            b: point.name.clone(),
                            detail: cross.join("; "),
                            first_divergent_cycle: None,
                        }));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Runs one matrix point, returning the digest and outcome.
    fn run_point(
        &mut self,
        program: &Program,
        point: &MatrixPoint,
    ) -> Result<(ArchDigest, SimOutcome), Divergence> {
        let sim_err = |e: SimError| Divergence {
            kind: "sim-error".into(),
            a: point.name.clone(),
            b: String::new(),
            detail: e.to_string(),
            first_divergent_cycle: None,
        };
        match point.exec {
            ExecMode::Fresh => {
                let mut m = Machine::new(point.cfg.clone(), program).map_err(sim_err)?;
                let outcome = m.run(self.budget).map_err(sim_err)?;
                Ok((ArchDigest::new(&outcome.output, m.memory()), outcome))
            }
            ExecMode::Warm => {
                let m = self.warm.prepare(point.cfg.clone(), program).map_err(sim_err)?;
                let outcome = m.run(self.budget).map_err(sim_err)?;
                Ok((ArchDigest::new(&outcome.output, m.memory()), outcome))
            }
            ExecMode::NoDecodeCache => {
                decode::set_decode_cache_enabled(false);
                let result = (|| {
                    let mut m = Machine::new(point.cfg.clone(), program).map_err(sim_err)?;
                    let outcome = m.run(self.budget).map_err(sim_err)?;
                    Ok((ArchDigest::new(&outcome.output, m.memory()), outcome))
                })();
                decode::set_decode_cache_enabled(true);
                result
            }
            ExecMode::Checkpoint { numer, denom } => {
                // Learn the uninterrupted run, then replay with a pause
                // at the requested fraction, snapshot, restore into a
                // fresh machine and finish there. The resumed run must
                // reproduce the uninterrupted outcome exactly.
                let mut m = Machine::new(point.cfg.clone(), program).map_err(sim_err)?;
                let uninterrupted = m.run(self.budget).map_err(sim_err)?;
                let pause = (uninterrupted.stats.cycles * numer as u64 / denom as u64).max(1);
                let mut m1 = Machine::new(point.cfg.clone(), program).map_err(sim_err)?;
                let outcome = match m1.run_until(self.budget, pause).map_err(sim_err)? {
                    Some(outcome) => outcome, // finished before the pause
                    None => {
                        let blob = m1.snapshot();
                        let mut m2 = Machine::new(point.cfg.clone(), program).map_err(sim_err)?;
                        m2.restore_snapshot(&blob).map_err(sim_err)?;
                        let outcome = m2.run(self.budget).map_err(sim_err)?;
                        let digest = ArchDigest::new(&outcome.output, m2.memory());
                        if outcome != uninterrupted {
                            return Err(Divergence {
                                kind: "checkpoint".into(),
                                a: format!("{}:uninterrupted", point.name),
                                b: point.name.clone(),
                                detail: describe_outcome_mismatch(&uninterrupted, &outcome),
                                first_divergent_cycle: None,
                            });
                        }
                        return Ok((digest, outcome));
                    }
                };
                let digest = ArchDigest::new(&outcome.output, m1.memory());
                Ok((digest, outcome))
            }
        }
    }

    /// Best-effort divergence localization: when `point` shares a
    /// machine config with another matrix point, both runs should be
    /// cycle-identical, so the first differing trace event marks where
    /// they part ways.
    fn localize(
        &mut self,
        program: &Program,
        points: &[MatrixPoint],
        point: &MatrixPoint,
    ) -> Option<u64> {
        let peer = points
            .iter()
            .find(|p| p.name != point.name && p.cfg == point.cfg && p.exec == ExecMode::Fresh)?;
        let a = self.traced_events(program, peer)?;
        let b = self.traced_events(program, point)?;
        let idx = a.iter().zip(&b).position(|(x, y)| x != y)?;
        Some(a[idx].cycle.min(b[idx].cycle))
    }

    fn traced_events(
        &mut self,
        program: &Program,
        point: &MatrixPoint,
    ) -> Option<Vec<capsule_sim::TraceEvent>> {
        const TRACE_LIMIT: usize = 1 << 16;
        match point.exec {
            ExecMode::Fresh | ExecMode::Warm | ExecMode::NoDecodeCache => {
                let disable = point.exec == ExecMode::NoDecodeCache;
                if disable {
                    decode::set_decode_cache_enabled(false);
                }
                let mut m = Machine::new(point.cfg.clone(), program).ok();
                if disable {
                    decode::set_decode_cache_enabled(true);
                }
                let m = m.as_mut()?;
                m.enable_trace(TRACE_LIMIT);
                let outcome = m.run(self.budget).ok()?;
                Some(outcome.trace?.events().to_vec())
            }
            ExecMode::Checkpoint { numer, denom } => {
                let mut probe = Machine::new(point.cfg.clone(), program).ok()?;
                let total = probe.run(self.budget).ok()?.stats.cycles;
                let pause = (total * numer as u64 / denom as u64).max(1);
                let mut m1 = Machine::new(point.cfg.clone(), program).ok()?;
                m1.enable_trace(TRACE_LIMIT);
                match m1.run_until(self.budget, pause).ok()? {
                    Some(outcome) => Some(outcome.trace?.events().to_vec()),
                    None => {
                        let mut events =
                            m1.trace().map(|t| t.events().to_vec()).unwrap_or_default();
                        let blob = m1.snapshot();
                        let mut m2 = Machine::new(point.cfg.clone(), program).ok()?;
                        m2.restore_snapshot(&blob).ok()?;
                        m2.enable_trace(TRACE_LIMIT);
                        let outcome = m2.run(self.budget).ok()?;
                        if let Some(t) = outcome.trace {
                            events.extend(t.events().iter().cloned());
                        }
                        Some(events)
                    }
                }
            }
        }
    }
}

fn describe_outcome_mismatch(a: &SimOutcome, b: &SimOutcome) -> String {
    if a.stats != b.stats {
        format!("stats differ: {:?} vs {:?}", a.stats, b.stats)
    } else if a.output != b.output {
        "output streams differ".into()
    } else if a.tree != b.tree {
        "division trees differ".into()
    } else {
        "outcomes differ (sections/caches/memory accounting)".into()
    }
}

/// Runs the reference interpreter and digests its results.
fn interp_digest(program: &Program) -> Result<ArchDigest, String> {
    let mut i = Interp::new(program, InterpConfig::default())
        .map_err(|e| format!("interp rejected program: {e}"))?;
    let out = i.run(50_000_000).map_err(|e| format!("interp failed: {e}"))?;
    Ok(ArchDigest::new(&out.output, i.memory()))
}

/// Satellite property: generator output must survive both toolchain
/// round trips. Returns a description of the first asymmetry found.
pub fn round_trip_violation(program: &Program) -> Option<String> {
    let src = text::disassemble(&program.text);
    match text::parse(&src) {
        Err(e) => return Some(format!("disassembled text failed to parse: {e}")),
        Ok(back) if back != program.text => {
            let idx = program.text.iter().zip(&back).position(|(a, b)| a != b);
            return Some(format!("text round trip changed instruction {idx:?}"));
        }
        Ok(_) => {}
    }
    match encode::encode_all(&program.text) {
        Err(e) => return Some(format!("encode failed: {e}")),
        Ok(words) => match encode::decode_all(&words) {
            Err(e) => return Some(format!("decode failed: {e}")),
            Ok(back) if back != program.text => {
                let idx = program.text.iter().zip(&back).position(|(a, b)| a != b);
                return Some(format!("binary round trip changed instruction {idx:?}"));
            }
            Ok(_) => {}
        },
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenParams};

    #[test]
    fn reduced_matrix_agrees_on_seeded_programs() {
        let mut h = Harness::new(Matrix::Reduced);
        for seed in 0..6 {
            let spec = generate(seed, GenParams::default());
            let d = h.run_spec(&spec).unwrap();
            assert!(d.is_none(), "seed {seed} diverged: {d:?}");
        }
    }

    #[test]
    fn round_trip_holds_for_generated_programs() {
        for seed in 0..40 {
            let spec = generate(seed, GenParams::default());
            let p = crate::codegen::build(&spec).unwrap();
            assert_eq!(round_trip_violation(&p), None, "seed {seed}");
        }
    }

    #[test]
    fn injected_fault_is_detected() {
        let mut h = Harness::new(Matrix::Reduced);
        h.fault = Some(|point, digest| {
            if point.name.contains("somt-greedy") {
                digest.mem_fnv ^= 1;
            }
        });
        let spec = generate(1, GenParams::default());
        let d = h.run_spec(&spec).unwrap().expect("fault must surface as divergence");
        // The interp reference is checked before the cross-point
        // baseline, so a corrupted digest surfaces there first.
        assert!(d.kind == "interp" || d.kind == "arch", "{d:?}");
        assert!(d.a.contains("somt-greedy") || d.b.contains("somt-greedy"), "{d:?}");
    }
}
