//! capsule-fuzz: seeded CAP64 program fuzzing with differential
//! checking across machine configurations and division policies.
//!
//! The crate generates *well-formed-by-construction* CAP64 programs
//! from a structured spec ([`spec`]), lowers them to the paper's three
//! program versions ([`codegen`]), and runs each program across a
//! matrix of machine configs and execution modes ([`matrix`],
//! [`harness`]), requiring bit-identical architectural results
//! everywhere. Divergences are auto-minimized by delta debugging over
//! the spec AST ([`minimize`]) and written as replayable JSON artifacts
//! ([`artifact`]); minimized programs checked into `corpus/` are
//! embedded and replayed as regression tests ([`corpus`]).
//!
//! See `docs/FUZZ.md` for the full triage workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod codegen;
pub mod corpus;
pub mod harness;
pub mod invariants;
pub mod matrix;
pub mod minimize;
pub mod spec;

pub use artifact::Artifact;
pub use codegen::{build, BuildError};
pub use harness::{ArchDigest, Divergence, Harness, DEFAULT_BUDGET};
pub use matrix::{ExecMode, Matrix, MatrixPoint};
pub use minimize::{minimize, MinimizeStats};
pub use spec::{generate, input_words, GenParams, ProgramSpec, Version};

/// Options of a differential sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// First seed of the sweep.
    pub seed: u64,
    /// Number of programs (seeds `seed..seed+count`).
    pub count: u64,
    /// Config matrix to run each program on.
    pub matrix: Matrix,
    /// Per-run cycle budget.
    pub budget: u64,
    /// Delta-debug any divergence down to a minimal spec.
    pub minimize: bool,
    /// Generator tunables.
    pub params: GenParams,
}

impl SweepOptions {
    /// A reduced-matrix sweep of `count` programs starting at `seed`.
    pub fn new(seed: u64, count: u64) -> SweepOptions {
        SweepOptions {
            seed,
            count,
            matrix: Matrix::Reduced,
            budget: DEFAULT_BUDGET,
            minimize: true,
            params: GenParams::default(),
        }
    }
}

/// Outcome of [`sweep`].
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Programs generated and checked.
    pub programs: u64,
    /// Programs per version name (`seq` / `static` / `component`).
    pub version_counts: Vec<(String, u64)>,
    /// Artifacts for every divergence found (minimized when requested).
    pub divergences: Vec<Artifact>,
    /// Minimization effort, summed over divergences.
    pub minimize_stats: MinimizeStats,
}

/// Runs a deterministic differential sweep. Every seed is generated,
/// lowered and swept across the matrix; divergent seeds are (optionally)
/// minimized and collected as artifacts. `fault` corrupts digests for
/// mutation-testing the pipeline itself — production sweeps pass
/// `None`.
pub fn sweep(opts: &SweepOptions, fault: Option<harness::FaultFn>) -> SweepReport {
    let mut harness = Harness::new(opts.matrix);
    harness.budget = opts.budget;
    harness.fault = fault;
    let mut report = SweepReport::default();

    for seed in opts.seed..opts.seed.saturating_add(opts.count) {
        let spec = generate(seed, opts.params);
        report.programs += 1;
        bump(&mut report.version_counts, spec.version.name());

        let diverged = match harness.run_spec(&spec) {
            Ok(None) => continue,
            Ok(Some(d)) => d,
            Err(e) => {
                // A generator/codegen bug, reported like a divergence so
                // sweeps never silently skip seeds.
                report.divergences.push(Artifact {
                    seed,
                    spec,
                    matrix: opts.matrix,
                    kind: "build-error".into(),
                    pair: (String::new(), String::new()),
                    detail: e.to_string(),
                    first_divergent_cycle: None,
                    near_miss: false,
                });
                continue;
            }
        };

        let (min_spec, final_div) = if opts.minimize {
            let (min_spec, stats) =
                minimize(&spec, &mut |cand| matches!(harness.run_spec(cand), Ok(Some(_))));
            report.minimize_stats.attempts += stats.attempts;
            report.minimize_stats.accepted += stats.accepted;
            let d = match harness.run_spec(&min_spec) {
                Ok(Some(d)) => d,
                _ => diverged.clone(),
            };
            (min_spec, d)
        } else {
            (spec, diverged)
        };
        report.divergences.push(Artifact::from_divergence(&min_spec, opts.matrix, &final_div));
    }
    report
}

fn bump(counts: &mut Vec<(String, u64)>, name: &str) {
    match counts.iter_mut().find(|(n, _)| n == name) {
        Some((_, c)) => *c += 1,
        None => counts.push((name.to_string(), 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_reports_no_divergences() {
        let report = sweep(&SweepOptions::new(100, 8), None);
        assert_eq!(report.programs, 8);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        let total: u64 = report.version_counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn planted_bug_is_caught_and_minimized_to_a_tiny_reproducer() {
        // Mutation test for the whole pipeline: corrupt the memory
        // digest of every somt-greedy run, as a simulator bug that only
        // manifests under one division policy would. The sweep must
        // catch it on the first seed and delta-debug the reproducer to
        // the minimal skeleton (well under 30 instructions).
        let fault: harness::FaultFn = |point, digest| {
            if point.name.starts_with("somt-greedy") {
                digest.mem_fnv ^= 1;
            }
        };
        let mut opts = SweepOptions::new(0, 1);
        opts.params = GenParams { max_tasks: 6, max_body_ops: 6 };
        let report = sweep(&opts, Some(fault));
        assert_eq!(report.divergences.len(), 1, "planted bug must surface");
        let artifact = &report.divergences[0];
        assert!(
            artifact.pair.0.starts_with("somt-greedy")
                || artifact.pair.1.starts_with("somt-greedy")
                || artifact.kind == "interp",
            "divergence should implicate the faulty config: {artifact:?}"
        );
        let program = build(&artifact.spec).unwrap();
        assert!(
            program.text.len() <= 30,
            "minimized reproducer has {} instructions, want <= 30",
            program.text.len()
        );
        assert!(report.minimize_stats.accepted > 0);
    }

    #[test]
    fn sweeps_are_deterministic() {
        let a = sweep(&SweepOptions::new(7, 4), None);
        let b = sweep(&SweepOptions::new(7, 4), None);
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.version_counts, b.version_counts);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }
}
