//! Replayable divergence artifacts.
//!
//! When the harness finds a divergence (or the near-miss generator
//! pins an interesting edge case), the offending spec is serialized —
//! together with the matrix, the disagreeing pair, the localized cycle
//! and the disassembled CAP64 text — into a single JSON document that
//! can be checked into `corpus/` and replayed byte-identically later.
//!
//! Replay semantics are uniform for fixed bugs and near misses alike:
//! rebuild the program from the embedded spec, sweep the recorded
//! matrix, and require **no** divergence. A replay that diverges means
//! a fixed bug regressed (or a near-miss edge started misbehaving).

use capsule_core::output::Json;
use capsule_isa::text;

use crate::codegen::{build, BuildError};
use crate::harness::{Divergence, Harness};
use crate::matrix::Matrix;
use crate::spec::ProgramSpec;

/// Artifact schema tag; bump on incompatible format changes.
pub const SCHEMA: &str = "capsule-fuzz/1";

/// A minimized, replayable fuzzing result.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Seed of the originating sweep (provenance).
    pub seed: u64,
    /// The (minimized) program spec.
    pub spec: ProgramSpec,
    /// Matrix the divergence was observed on.
    pub matrix: Matrix,
    /// Divergence kind (`arch`, `checkpoint`, ... or `near-miss`).
    pub kind: String,
    /// The two disagreeing parties (empty strings for near misses).
    pub pair: (String, String),
    /// Human-readable description of what diverged / what edge the
    /// near miss exercises.
    pub detail: String,
    /// First divergent trace cycle when localization succeeded.
    pub first_divergent_cycle: Option<u64>,
    /// True when this is a checked-in edge-case program rather than a
    /// fixed bug.
    pub near_miss: bool,
}

impl Artifact {
    /// Packages a harness divergence for `spec`.
    pub fn from_divergence(spec: &ProgramSpec, matrix: Matrix, d: &Divergence) -> Artifact {
        Artifact {
            seed: spec.seed,
            spec: spec.clone(),
            matrix,
            kind: d.kind.clone(),
            pair: (d.a.clone(), d.b.clone()),
            detail: d.detail.clone(),
            first_divergent_cycle: d.first_divergent_cycle,
            near_miss: false,
        }
    }

    /// Packages a near-miss edge-case program.
    pub fn near_miss(spec: &ProgramSpec, matrix: Matrix, detail: &str) -> Artifact {
        Artifact {
            seed: spec.seed,
            spec: spec.clone(),
            matrix,
            kind: "near-miss".into(),
            pair: (String::new(), String::new()),
            detail: detail.into(),
            first_divergent_cycle: None,
            near_miss: true,
        }
    }

    /// Stable file name for the corpus directory.
    pub fn file_name(&self) -> String {
        let tag = if self.near_miss { "near-miss" } else { &self.kind };
        format!("seed{}-{}.json", self.seed, sanitize(tag))
    }

    /// Serializes to the artifact JSON document.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the spec no longer lowers (the disassembled
    /// text is part of the document).
    pub fn to_json(&self) -> Result<Json, BuildError> {
        let program = build(&self.spec)?;
        let mut o = Json::object();
        o.push("schema", SCHEMA)
            .push("seed", self.seed)
            .push("matrix", self.matrix.name())
            .push("kind", self.kind.as_str())
            .push(
                "pair",
                Json::Array(vec![self.pair.0.as_str().into(), self.pair.1.as_str().into()]),
            )
            .push("detail", self.detail.as_str());
        match self.first_divergent_cycle {
            Some(c) => o.push("first_divergent_cycle", c),
            None => o.push("first_divergent_cycle", Json::Null),
        };
        o.push("near_miss", self.near_miss)
            .push("spec", self.spec.to_json())
            .push("text", text::disassemble(&program.text));
        Ok(o)
    }

    /// Parses an artifact document produced by [`Artifact::to_json`].
    pub fn from_json(j: &Json) -> Option<Artifact> {
        if j.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let pair = j.get("pair")?.as_array()?;
        Some(Artifact {
            seed: j.get("seed")?.as_u64()?,
            spec: ProgramSpec::from_json(j.get("spec")?)?,
            matrix: Matrix::parse(j.get("matrix")?.as_str()?)?,
            kind: j.get("kind")?.as_str()?.to_string(),
            pair: (pair.first()?.as_str()?.to_string(), pair.get(1)?.as_str()?.to_string()),
            detail: j.get("detail")?.as_str()?.to_string(),
            first_divergent_cycle: j.get("first_divergent_cycle").and_then(Json::as_u64),
            near_miss: j.get("near_miss")?.as_bool()?,
        })
    }

    /// Parses an artifact from serialized JSON text.
    pub fn parse(src: &str) -> Option<Artifact> {
        Artifact::from_json(&Json::parse(src).ok()?)
    }

    /// Replays the artifact: rebuilds the program from the spec and
    /// sweeps the recorded matrix. Returns the divergence if the sweep
    /// disagrees — for checked-in corpus entries the expectation is
    /// `Ok(None)`.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the embedded spec no longer lowers.
    pub fn replay(&self) -> Result<Option<Divergence>, BuildError> {
        Harness::new(self.matrix).run_spec(&self.spec)
    }
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenParams};

    #[test]
    fn artifact_json_round_trips() {
        let spec = generate(5, GenParams::default());
        let d = Divergence {
            kind: "arch".into(),
            a: "smt+fresh".into(),
            b: "somt-greedy+fresh".into(),
            detail: "output mismatch at value 0".into(),
            first_divergent_cycle: Some(1234),
        };
        let a = Artifact::from_divergence(&spec, Matrix::Reduced, &d);
        let doc = a.to_json().unwrap().to_string_pretty();
        let back = Artifact::parse(&doc).expect("artifact should parse back");
        assert_eq!(back.spec, a.spec);
        assert_eq!(back.kind, "arch");
        assert_eq!(back.pair, a.pair);
        assert_eq!(back.first_divergent_cycle, Some(1234));
        assert_eq!(back.matrix, Matrix::Reduced);
        assert!(!back.near_miss);
        assert!(doc.contains("halt"), "document embeds disassembled text");
    }

    #[test]
    fn near_miss_round_trips_with_null_cycle() {
        let spec = generate(9, GenParams::default());
        let a = Artifact::near_miss(&spec, Matrix::Reduced, "divisions granted under somt");
        let doc = a.to_json().unwrap().to_string_compact();
        let back = Artifact::parse(&doc).unwrap();
        assert!(back.near_miss);
        assert_eq!(back.first_divergent_cycle, None);
        assert_eq!(back.file_name(), format!("seed{}-near-miss.json", spec.seed));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let spec = generate(5, GenParams::default());
        let a = Artifact::near_miss(&spec, Matrix::Reduced, "x");
        let doc = a.to_json().unwrap().to_string_compact();
        let tampered = doc.replace(SCHEMA, "capsule-fuzz/999");
        assert!(Artifact::parse(&tampered).is_none());
    }
}
