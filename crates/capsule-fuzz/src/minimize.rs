//! Spec-level delta debugging.
//!
//! Minimization works over the structured [`ProgramSpec`] AST, never
//! over raw instruction bytes — every candidate is lowered by the same
//! well-formed-by-construction codegen, so shrinking cannot introduce
//! traps or unbounded loops that would confuse the triage of a real
//! divergence.
//!
//! [`minimize`] takes a predicate ("does this spec still reproduce the
//! interesting behaviour?") and greedily applies shrinking passes to a
//! fixpoint: drop the program version down to sequential, shrink the
//! task count, clear feature flags, shrink region sizes, and
//! delta-reduce the body op tree (chunk removal, loop/if flattening,
//! trip-count reduction, recursive shrinking of nested bodies).

use crate::spec::{Op, ProgramSpec, Version};

/// Counters reported by a minimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Candidate specs tested.
    pub attempts: u64,
    /// Candidates accepted (still reproducing).
    pub accepted: u64,
}

/// Shrinks `spec` while `still_fails` keeps returning `true` for the
/// shrunk candidate. The input spec itself is assumed to fail; the
/// result is a local minimum (no single pass can shrink it further).
pub fn minimize(
    spec: &ProgramSpec,
    still_fails: &mut dyn FnMut(&ProgramSpec) -> bool,
) -> (ProgramSpec, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let mut best = spec.clone();
    let mut check = |cand: &ProgramSpec, stats: &mut MinimizeStats| -> bool {
        stats.attempts += 1;
        let ok = still_fails(cand);
        if ok {
            stats.accepted += 1;
        }
        ok
    };

    loop {
        let mut changed = false;

        // Program version: sequential is the simplest to triage.
        if best.version != Version::Sequential {
            let mut c = best.clone();
            c.version = Version::Sequential;
            if check(&c, &mut stats) {
                best = c;
                changed = true;
            }
        }

        // Task count: jump to 1, then binary, then linear.
        while best.ntasks > min_tasks(&best) {
            let floor = min_tasks(&best);
            let mut accepted = false;
            for cand in [floor, best.ntasks / 2, best.ntasks - 1] {
                if cand >= floor && cand < best.ntasks {
                    let mut c = best.clone();
                    c.ntasks = cand;
                    if check(&c, &mut stats) {
                        best = c;
                        accepted = true;
                        changed = true;
                        break;
                    }
                }
            }
            if !accepted {
                break;
            }
        }

        // Feature flags and region sizes.
        for field in [clear_fp, clear_marks, clear_locks] {
            let mut c = best.clone();
            if field(&mut c) && check(&c, &mut stats) {
                best = c;
                changed = true;
            }
        }
        for field in [shrink_grain, shrink_inputs, shrink_outputs, shrink_scratch] {
            let mut c = best.clone();
            if field(&mut c) && check(&c, &mut stats) {
                best = c;
                changed = true;
            }
        }

        // Body tree: accept the first single-step shrink that still
        // fails, then rescan from the top.
        let mut shrunk_body = true;
        while shrunk_body {
            shrunk_body = false;
            for cand_body in shrink_ops(&best.body) {
                let mut c = best.clone();
                c.body = cand_body;
                if check(&c, &mut stats) {
                    best = c;
                    shrunk_body = true;
                    changed = true;
                    break;
                }
            }
        }

        if !changed {
            return (best, stats);
        }
    }
}

fn min_tasks(spec: &ProgramSpec) -> u32 {
    match spec.version {
        Version::Static(n) => (n as u32).max(1),
        _ => 1,
    }
}

fn clear_fp(s: &mut ProgramSpec) -> bool {
    std::mem::replace(&mut s.fp, false)
}
fn clear_marks(s: &mut ProgramSpec) -> bool {
    std::mem::replace(&mut s.marks, false)
}
fn clear_locks(s: &mut ProgramSpec) -> bool {
    std::mem::replace(&mut s.use_locks, false)
}
fn shrink_grain(s: &mut ProgramSpec) -> bool {
    shrink_dim(&mut s.grain)
}
fn shrink_inputs(s: &mut ProgramSpec) -> bool {
    shrink_dim(&mut s.inputs_per_task)
}
fn shrink_outputs(s: &mut ProgramSpec) -> bool {
    shrink_dim(&mut s.outputs_per_task)
}
fn shrink_scratch(s: &mut ProgramSpec) -> bool {
    shrink_dim(&mut s.scratch_per_task)
}
fn shrink_dim(v: &mut u32) -> bool {
    if *v > 1 {
        *v = 1;
        true
    } else {
        false
    }
}

/// All single-step shrinks of an op list, largest removals first.
fn shrink_ops(ops: &[Op]) -> Vec<Vec<Op>> {
    let mut out = Vec::new();
    let n = ops.len();

    // Chunk removals: whole list, halves, quarters, ... singles.
    let mut size = n;
    while size >= 1 {
        let mut start = 0;
        while start + size <= n {
            let mut c = ops.to_vec();
            c.drain(start..start + size);
            out.push(c);
            start += size;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }

    // Structural simplifications, one site at a time.
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Loop { count, body } => {
                let mut c = ops.to_vec();
                c.splice(i..=i, body.iter().cloned());
                out.push(c);
                if *count > 1 {
                    let mut c = ops.to_vec();
                    c[i] = Op::Loop { count: 1, body: body.clone() };
                    out.push(c);
                }
                for sb in shrink_ops(body) {
                    let mut c = ops.to_vec();
                    c[i] = Op::Loop { count: *count, body: sb };
                    out.push(c);
                }
            }
            Op::If { cond, a, b, then_ops, else_ops } => {
                for branch in [then_ops, else_ops] {
                    let mut c = ops.to_vec();
                    c.splice(i..=i, branch.iter().cloned());
                    out.push(c);
                }
                for sb in shrink_ops(then_ops) {
                    let mut c = ops.to_vec();
                    c[i] = Op::If {
                        cond: *cond,
                        a: *a,
                        b: *b,
                        then_ops: sb,
                        else_ops: else_ops.clone(),
                    };
                    out.push(c);
                }
                for sb in shrink_ops(else_ops) {
                    let mut c = ops.to_vec();
                    c[i] = Op::If {
                        cond: *cond,
                        a: *a,
                        b: *b,
                        then_ops: then_ops.clone(),
                        else_ops: sb,
                    };
                    out.push(c);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenParams};
    use capsule_isa::instr::AluOp;

    fn contains_mul(ops: &[Op]) -> bool {
        ops.iter().any(|op| match op {
            Op::Alu { op: AluOp::Mul, .. } | Op::AluI { op: AluOp::Mul, .. } => true,
            Op::Loop { body, .. } => contains_mul(body),
            Op::If { then_ops, else_ops, .. } => contains_mul(then_ops) || contains_mul(else_ops),
            _ => false,
        })
    }

    #[test]
    fn minimizer_isolates_the_interesting_op() {
        // Find a generated spec whose body contains a multiply, then
        // minimize with "still contains a multiply" as the oracle.
        let spec = (0..200)
            .map(|s| generate(s, GenParams::default()))
            .find(|s| contains_mul(&s.body) && s.body_weight() > 3)
            .expect("some seed must generate a multiply");
        let (min, stats) = minimize(&spec, &mut |c| contains_mul(&c.body));
        assert!(contains_mul(&min.body), "shrink lost the property");
        assert_eq!(min.version, Version::Sequential);
        assert_eq!(min.ntasks, 1);
        assert_eq!(
            (min.inputs_per_task, min.outputs_per_task, min.scratch_per_task, min.grain),
            (1, 1, 1, 1)
        );
        assert!(!min.fp && !min.marks && !min.use_locks);
        assert_eq!(min.body_weight(), 1, "exactly the multiply should remain: {:?}", min.body);
        assert!(stats.accepted > 0 && stats.attempts >= stats.accepted);
    }

    #[test]
    fn minimum_is_stable() {
        let spec = generate(3, GenParams::default());
        let (min, _) = minimize(&spec, &mut |_| true);
        // An always-failing oracle shrinks to the absolute floor.
        assert_eq!(min.body_weight(), 0);
        assert_eq!(min.ntasks, 1);
        let (again, stats) = minimize(&min, &mut |_| true);
        assert_eq!(again, min);
        assert_eq!(stats.accepted, 0, "re-minimizing a minimum must accept nothing");
    }

    #[test]
    fn static_floor_respects_thread_count() {
        let mut spec = generate(11, GenParams::default());
        spec.version = Version::Static(3);
        spec.ntasks = spec.ntasks.max(3);
        // Oracle rejects sequential, so the version must stay static and
        // ntasks must stop at the thread count.
        let (min, _) = minimize(&spec, &mut |c| c.version == Version::Static(3));
        assert_eq!(min.version, Version::Static(3));
        assert_eq!(min.ntasks, 3);
    }
}
