//! Lowers a [`ProgramSpec`] to a loadable CAP64 [`Program`].
//!
//! All three program versions share one skeleton:
//!
//! ```text
//! entry:     load region base addresses
//! (split:)   component only — nthr range-splitting loop
//! do_tasks:  for task in [lo, hi): call task_fn
//! join:      counter -= (hi - lo) under mlock; last finisher falls through
//! output:    emit every output word in task order, then the counter, halt
//! die:       kthr (non-final workers)
//! task_fn:   init value banks, run the spec body, store results
//! ```
//!
//! The worker that drives the join counter to zero is the only one that
//! reaches the output phase, so the `out` stream and the final memory
//! image are identical across machine configurations, division policies
//! and schedules — the property the differential harness checks.
//!
//! Register convention (task bodies only touch the value banks):
//!
//! | regs      | role                                            |
//! |-----------|-------------------------------------------------|
//! | r1, r2    | `lo`, `hi` task range (loader-set)              |
//! | r3, r4    | span/mid scratch, task index                    |
//! | r5, r6, r13 | per-task input/scratch/output base            |
//! | r7, r8, r14 | `nthr` result, scratch                        |
//! | r9..r12   | input/output/scratch/counter region bases       |
//! | r16..r21  | integer value bank `v0..v5`                     |
//! | r22, r23  | loop counters (one per nesting depth)           |
//! | f0..f3    | FP value bank                                   |

use capsule_isa::asm::{Asm, AsmError};
use capsule_isa::instr::{BrCond, Instr};
use capsule_isa::program::{DataBuilder, Program, ProgramError, ThreadSpec};
use capsule_isa::reg::{FReg, Reg};

use crate::spec::{Op, ProgramSpec, Version, FBANK, VBANK};

const LO: Reg = Reg(1);
const HI: Reg = Reg(2);
const MID: Reg = Reg(3);
const TASK: Reg = Reg(4);
const IN_T: Reg = Reg(5);
const SCR_T: Reg = Reg(6);
const PROBE: Reg = Reg(7);
const TMP: Reg = Reg(8);
const IN_BASE: Reg = Reg(9);
const OUT_BASE: Reg = Reg(10);
const SCR_BASE: Reg = Reg(11);
const CNT: Reg = Reg(12);
const OUT_T: Reg = Reg(13);
const TMP2: Reg = Reg(14);

fn vr(i: u8) -> Reg {
    Reg(16 + i % VBANK)
}

fn fr(i: u8) -> FReg {
    FReg(i % FBANK)
}

/// Why a spec cannot be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A structural field is zero or inconsistent.
    BadSpec(String),
    /// Label bookkeeping failed (a codegen bug, not a spec problem).
    Asm(AsmError),
    /// The lowered program failed [`Program::validate`].
    Program(ProgramError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadSpec(m) => write!(f, "bad spec: {m}"),
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Program(e) => write!(f, "lowered program invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

struct Usage {
    vregs: [bool; VBANK as usize],
    input: bool,
    scratch: bool,
}

fn mark(u: &mut Usage, i: u8) {
    u.vregs[(i % VBANK) as usize] = true;
}

fn scan_ops(ops: &[Op], u: &mut Usage) {
    for op in ops {
        match op {
            Op::Alu { dst, a, b, .. } => {
                mark(u, *dst);
                mark(u, *a);
                mark(u, *b);
            }
            Op::AluI { dst, a, .. } => {
                mark(u, *dst);
                mark(u, *a);
            }
            Op::LoadInput { dst, .. } => {
                mark(u, *dst);
                u.input = true;
            }
            Op::LoadScratch { dst, .. } | Op::LoadByte { dst, .. } => {
                mark(u, *dst);
                u.scratch = true;
            }
            Op::Store { src, .. } | Op::StoreByte { src, .. } => {
                mark(u, *src);
                u.scratch = true;
            }
            Op::FCmp { dst, .. } => mark(u, *dst),
            Op::CvtIF { a, .. } => mark(u, *a),
            Op::CvtFI { dst, .. } => mark(u, *dst),
            Op::FAlu { .. } => {}
            Op::Loop { body, .. } => scan_ops(body, u),
            Op::If { a, b, then_ops, else_ops, .. } => {
                mark(u, *a);
                mark(u, *b);
                scan_ops(then_ops, u);
                scan_ops(else_ops, u);
            }
        }
    }
}

fn usage(spec: &ProgramSpec) -> Usage {
    let mut u = Usage { vregs: [false; VBANK as usize], input: false, scratch: false };
    scan_ops(&spec.body, &mut u);
    // The writeback folds v[j % VBANK] into output word j.
    for j in 0..spec.outputs_per_task.min(VBANK as u32) {
        u.vregs[(j as usize) % VBANK as usize] = true;
    }
    if spec.fp {
        // The FP bank is seeded from v0..v2, and the fold reads it back.
        u.vregs = [true; VBANK as usize];
        u.input = true;
    }
    if u.vregs.iter().skip(1).any(|&b| b) {
        u.input = true; // v1..v5 are seeded from the task's input words
    }
    u
}

fn branch(a: &mut Asm, cond: BrCond, rs1: Reg, rs2: Reg, label: &str) {
    match cond {
        BrCond::Eq => a.beq(rs1, rs2, label),
        BrCond::Ne => a.bne(rs1, rs2, label),
        BrCond::Lt => a.blt(rs1, rs2, label),
        BrCond::Ge => a.bge(rs1, rs2, label),
        BrCond::Ltu => a.bltu(rs1, rs2, label),
        BrCond::Geu => a.bgeu(rs1, rs2, label),
    }
}

struct Emitter<'s> {
    spec: &'s ProgramSpec,
    next_label: u32,
}

impl Emitter<'_> {
    fn fresh(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!("{stem}{}", self.next_label)
    }

    fn emit_ops(&mut self, a: &mut Asm, ops: &[Op], depth: u8) {
        for op in ops {
            self.emit_op(a, op, depth);
        }
    }

    fn emit_op(&mut self, a: &mut Asm, op: &Op, depth: u8) {
        let spt = self.spec.scratch_per_task as i64;
        let ipt = self.spec.inputs_per_task as i64;
        match op {
            Op::Alu { op, dst, a: x, b: y } => {
                a.push(Instr::Alu { op: *op, rd: vr(*dst), rs1: vr(*x), rs2: vr(*y) });
            }
            Op::AluI { op, dst, a: x, imm } => {
                a.push(Instr::AluI { op: *op, rd: vr(*dst), rs1: vr(*x), imm: *imm });
            }
            Op::LoadInput { dst, idx } => a.ld(vr(*dst), 8 * (*idx as i64 % ipt), IN_T),
            Op::LoadScratch { dst, slot } => a.ld(vr(*dst), 8 * (*slot as i64 % spt), SCR_T),
            Op::Store { src, slot } => a.st(vr(*src), 8 * (*slot as i64 % spt), SCR_T),
            Op::StoreByte { src, slot, byte } => {
                a.stb(vr(*src), 8 * (*slot as i64 % spt) + (*byte as i64 % 8), SCR_T);
            }
            Op::LoadByte { dst, slot, byte } => {
                a.ldb(vr(*dst), 8 * (*slot as i64 % spt) + (*byte as i64 % 8), SCR_T);
            }
            Op::FAlu { op, dst, a: x, b: y } => {
                a.push(Instr::FAlu { op: *op, fd: fr(*dst), fs1: fr(*x), fs2: fr(*y) });
            }
            Op::FCmp { op, dst, a: x, b: y } => a.fcmp(*op, vr(*dst), fr(*x), fr(*y)),
            Op::CvtIF { dst, a: x } => a.cvtif(fr(*dst), vr(*x)),
            Op::CvtFI { dst, a: x } => a.cvtfi(vr(*dst), fr(*x)),
            Op::Loop { count, body } => {
                if depth >= 2 {
                    // Deeper nesting than the two loop-counter registers
                    // support: degrade to a single inline iteration.
                    self.emit_ops(a, body, depth);
                    return;
                }
                let lc = Reg(22 + depth);
                let start = self.fresh("fl");
                a.li(lc, (*count).max(1) as i64);
                a.bind(start.clone());
                self.emit_ops(a, body, depth + 1);
                a.addi(lc, lc, -1);
                a.bne(lc, Reg::ZERO, &start);
            }
            Op::If { cond, a: x, b: y, then_ops, else_ops } => {
                let then_l = self.fresh("ft");
                let end_l = self.fresh("fe");
                branch(a, *cond, vr(*x), vr(*y), &then_l);
                self.emit_ops(a, else_ops, depth);
                a.j(&end_l);
                a.bind(then_l);
                self.emit_ops(a, then_ops, depth);
                a.bind(end_l);
            }
        }
    }
}

/// Lowers `spec` to a validated program.
///
/// # Errors
///
/// [`BuildError::BadSpec`] on zero-sized fields or a static version with
/// more threads than tasks; the other variants indicate codegen bugs.
pub fn build(spec: &ProgramSpec) -> Result<Program, BuildError> {
    if spec.ntasks == 0 {
        return Err(BuildError::BadSpec("ntasks must be >= 1".into()));
    }
    if spec.inputs_per_task == 0 || spec.outputs_per_task == 0 || spec.scratch_per_task == 0 {
        return Err(BuildError::BadSpec("per-task region sizes must be >= 1".into()));
    }
    if spec.grain == 0 {
        return Err(BuildError::BadSpec("grain must be >= 1".into()));
    }
    if let Version::Static(n) = spec.version {
        if n == 0 || n as u32 > spec.ntasks {
            return Err(BuildError::BadSpec(format!(
                "static version needs 1..=ntasks threads, got {n} for {} tasks",
                spec.ntasks
            )));
        }
    }

    let n = spec.ntasks as i64;
    let ipt = spec.inputs_per_task as i64;
    let opt = spec.outputs_per_task as i64;
    let spt = spec.scratch_per_task as i64;
    let u = usage(spec);
    // The join requires an atomic read-modify-write once several workers
    // can finish concurrently; locks are optional only sequentially.
    let lock = spec.use_locks || spec.parallel();

    let mut d = DataBuilder::new();
    d.label("counter");
    d.word(n);
    d.label("inputs");
    d.words(&crate::spec::input_words(spec));
    d.label("outputs");
    d.zeros((n * opt) as usize * 8);
    d.align(8);
    d.label("scratch");
    d.zeros((n * spt) as usize * 8);
    d.align(8);
    d.label("fconst");
    let fc = (spec.seed % 61) as f64 / 4.0 + 0.5;
    d.f64s(&[fc]);
    let img = d.build();
    let counter_addr = img.symbols["counter"] as i64;
    let inputs_addr = img.symbols["inputs"] as i64;
    let outputs_addr = img.symbols["outputs"] as i64;
    let scratch_addr = img.symbols["scratch"] as i64;
    let fconst_addr = img.symbols["fconst"] as i64;

    let mut a = Asm::new();
    let mut em = Emitter { spec, next_label: 0 };

    // entry: region bases. lo/hi arrive in r1/r2 from the loader.
    if u.input {
        a.li(IN_BASE, inputs_addr);
    }
    a.li(OUT_BASE, outputs_addr);
    if u.scratch {
        a.li(SCR_BASE, scratch_addr);
    }
    a.li(CNT, counter_addr);

    if spec.version == Version::Component {
        // Range splitting: divide while the span exceeds the grain. The
        // child resumes at `child` with a full register copy (its lo is
        // the parent's mid); a denied probe runs the range undivided.
        a.bind("split");
        a.sub(MID, HI, LO);
        a.li(TMP, spec.grain as i64);
        a.bge(TMP, MID, "do_tasks");
        a.srai(MID, MID, 1);
        a.add(MID, LO, MID);
        a.nthr(PROBE, "child");
        a.bne(PROBE, Reg::ZERO, "do_tasks"); // denied: -1
        a.mv(HI, MID); // parent keeps [lo, mid)
        a.j("split");
        a.bind("child");
        a.mv(LO, MID); // child keeps [mid, hi)
        a.j("split");
    }

    a.bind("do_tasks");
    a.mv(TASK, LO);
    a.bind("task_loop");
    a.bge(TASK, HI, "join");
    if u.input {
        a.li(TMP, 8 * ipt);
        a.mul(IN_T, TASK, TMP);
        a.add(IN_T, IN_T, IN_BASE);
    }
    if u.scratch {
        a.li(TMP, 8 * spt);
        a.mul(SCR_T, TASK, TMP);
        a.add(SCR_T, SCR_T, SCR_BASE);
    }
    a.li(TMP, 8 * opt);
    a.mul(OUT_T, TASK, TMP);
    a.add(OUT_T, OUT_T, OUT_BASE);
    a.call("task_fn");
    a.addi(TASK, TASK, 1);
    a.j("task_loop");

    // join: counter -= my span; the worker that reaches zero continues.
    a.bind("join");
    a.sub(MID, HI, LO);
    if lock {
        a.mlock(CNT);
    }
    a.ld(TMP, 0, CNT);
    a.sub(TMP, TMP, MID);
    a.st(TMP, 0, CNT);
    if lock {
        a.munlock(CNT);
    }
    a.bne(TMP, Reg::ZERO, "die");

    // output: every result word in task order, then the drained counter.
    let total_out = n * opt;
    if total_out <= 4 {
        for w in 0..total_out {
            a.ld(TMP2, 8 * w, OUT_BASE);
            a.out(TMP2);
        }
    } else {
        a.li(TASK, 0);
        a.li(HI, total_out);
        a.bind("out_loop");
        a.bge(TASK, HI, "out_done");
        a.slli(TMP, TASK, 3);
        a.add(TMP, TMP, OUT_BASE);
        a.ld(TMP2, 0, TMP);
        a.out(TMP2);
        a.addi(TASK, TASK, 1);
        a.j("out_loop");
        a.bind("out_done");
    }
    if spec.fp {
        a.li(TMP, fconst_addr);
        a.fld(FReg(0), 0, TMP);
        a.outf(FReg(0));
    }
    a.ld(TMP, 0, CNT);
    a.out(TMP);
    a.halt();
    a.bind("die");
    a.kthr();

    // task_fn: banks from task-owned data, body, result writeback.
    a.bind("task_fn");
    if spec.marks {
        a.mark_start(1);
    }
    for (k, used) in u.vregs.iter().enumerate() {
        if !used {
            continue;
        }
        if k == 0 {
            a.mv(vr(0), TASK);
        } else {
            a.ld(vr(k as u8), 8 * ((k as i64 - 1) % ipt), IN_T);
        }
    }
    if spec.fp {
        for k in 0..FBANK {
            if k == 2 {
                a.fli(fr(2), fc);
            } else {
                a.cvtif(fr(k), vr(k % VBANK));
            }
        }
    }
    em.emit_ops(&mut a, &spec.body, 0);
    for j in 0..opt {
        a.mv(TMP, vr((j % VBANK as i64) as u8));
        if spec.fp {
            a.cvtfi(TMP2, fr((j % FBANK as i64) as u8));
            a.xor(TMP, TMP, TMP2);
        }
        a.st(TMP, 8 * j, OUT_T);
    }
    if spec.marks {
        a.mark_end(1);
    }
    a.ret();

    let text = a.assemble().map_err(BuildError::Asm)?;
    let mut program = Program::new(text, img, 4096);
    match spec.version {
        Version::Sequential | Version::Component => {
            program = program.with_thread(ThreadSpec::at(0).with_reg(LO, 0).with_reg(HI, n));
        }
        Version::Static(k) => {
            let k = k as i64;
            for t in 0..k {
                let lo = n * t / k;
                let hi = n * (t + 1) / k;
                program = program.with_thread(ThreadSpec::at(0).with_reg(LO, lo).with_reg(HI, hi));
            }
        }
    }
    program.validate().map_err(BuildError::Program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate, GenParams};
    use capsule_sim::interp::{Interp, InterpConfig};

    #[test]
    fn generated_programs_build_and_validate() {
        for seed in 0..150 {
            let spec = generate(seed, GenParams::default());
            let p = build(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!p.text.is_empty());
            assert_eq!(p.threads.len(), spec.version.threads());
        }
    }

    #[test]
    fn generated_programs_halt_on_the_reference_interpreter() {
        for seed in 0..60 {
            let spec = generate(seed, GenParams::default());
            let p = build(&spec).unwrap();
            let mut i = Interp::new(&p, InterpConfig::default()).unwrap();
            let out = i.run(5_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // output = all result words + (fp word) + drained counter.
            let expect = (spec.ntasks * spec.outputs_per_task) as usize + 1 + usize::from(spec.fp);
            assert_eq!(out.output.len(), expect, "seed {seed}");
            assert_eq!(out.output.last().unwrap().as_int(), Some(0), "seed {seed}: counter");
        }
    }

    #[test]
    fn interp_output_is_division_invariant() {
        // The component contract: results do not depend on whether any
        // division was granted.
        for seed in 0..40 {
            let spec = generate(seed, GenParams::default());
            let p = build(&spec).unwrap();
            let a = Interp::new(&p, InterpConfig { max_workers: 8, allow_division: true })
                .unwrap()
                .run(5_000_000)
                .unwrap();
            let b = Interp::new(&p, InterpConfig { max_workers: 8, allow_division: false })
                .unwrap()
                .run(5_000_000)
                .unwrap();
            assert_eq!(a.output, b.output, "seed {seed}");
        }
    }

    #[test]
    fn minimal_sequential_skeleton_is_small() {
        // The minimizer's floor: a trivial sequential spec must lower to
        // a reproducer a human can eyeball (≤ 30 instructions).
        let spec = ProgramSpec {
            seed: 0,
            version: Version::Sequential,
            ntasks: 1,
            grain: 1,
            inputs_per_task: 1,
            outputs_per_task: 1,
            scratch_per_task: 1,
            body: Vec::new(),
            use_locks: false,
            marks: false,
            fp: false,
        };
        let p = build(&spec).unwrap();
        assert!(p.text.len() <= 30, "minimal skeleton is {} instructions", p.text.len());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut spec = generate(0, GenParams::default());
        spec.ntasks = 0;
        assert!(matches!(build(&spec), Err(BuildError::BadSpec(_))));
        let mut spec = generate(0, GenParams::default());
        spec.version = Version::Static(200);
        assert!(matches!(build(&spec), Err(BuildError::BadSpec(_))));
        let mut spec = generate(0, GenParams::default());
        spec.outputs_per_task = 0;
        assert!(matches!(build(&spec), Err(BuildError::BadSpec(_))));
    }
}
