//! Native-thread analog of the CAPSULE runtime.
//!
//! The paper's contribution is hardware-assisted *conditional division*:
//! a worker constantly probes the architecture and divides in half only
//! when resources are free and workers are not dying too fast. This crate
//! reproduces that policy on ordinary OS threads so the algorithmic
//! behaviour can be studied at native speed, next to the cycle-level
//! model in `capsule-sim`:
//!
//! - [`runtime::run`] / [`runtime::Ctx::try_divide`] — probe + divide
//!   with the greedy, death-rate-throttled policy of `capsule-core`;
//! - [`algorithms`] — component quicksort and reduction built on it;
//! - baselines: [`runtime::RtConfig::always`] (Cilk-like unconditional
//!   spawning) and [`runtime::RtConfig::never`] (sequential);
//! - [`protected::Protected`] — the paper's §3.2 protected objects
//!   (Ada-style monitors) for data-centric synchronization.
//!
//! # Example
//!
//! ```
//! use capsule_rt::{capsule_sort, RtConfig};
//!
//! let mut data: Vec<u64> = (0..10_000).rev().collect();
//! let stats = capsule_sort(RtConfig::somt_like(4), &mut data);
//! assert!(data.windows(2).all(|w| w[0] <= w[1]));
//! assert!(stats.max_live <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod protected;
pub mod runtime;

pub use algorithms::{capsule_sort, capsule_sum};
pub use protected::Protected;
pub use runtime::{run, Ctx, RtConfig, RtStats};
