//! Protected objects — the paper's §3.2 data-centric synchronization
//! ("This data-centric synchronization will itself be based on protected
//! objects. Protected objects are standard objects where only a single
//! method can be executed at any time", after Ada protected objects and
//! Hoare monitors).
//!
//! [`Protected<T>`] wraps a value so that *methods* (closures over `&mut
//! T`) run mutually exclusive, with the same oldest-waiter fairness
//! discipline as the hardware lock table (`parking_lot`'s fair unlocking).

use parking_lot::Mutex;

/// A protected object: only one method executes at any time.
///
/// ```
/// use capsule_rt::Protected;
///
/// let acc = Protected::new(0i64);
/// acc.method(|v| *v += 40);
/// let snapshot = acc.method(|v| {
///     *v += 2;
///     *v
/// });
/// assert_eq!(snapshot, 42);
/// assert_eq!(acc.into_inner(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Protected<T> {
    inner: Mutex<T>,
}

impl<T> Protected<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Protected { inner: Mutex::new(value) }
    }

    /// Runs a method on the protected state, excluding every other method
    /// for its duration. Waiters are released in arrival order (the
    /// paper's lock table hands locks to the oldest waiter).
    pub fn method<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock();
        let r = f(&mut guard);
        // fair unlock: hand over to the longest waiter, like `munlock`
        parking_lot::MutexGuard::unlock_fair(guard);
        r
    }

    /// Reads the protected state through a method.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.method(|v| f(v))
    }

    /// Consumes the wrapper.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, RtConfig};

    #[test]
    fn methods_are_mutually_exclusive_under_division() {
        let counter = Protected::new((0i64, 0i64)); // (value, max_concurrency_seen)
        let ((), stats) = run(RtConfig::always(8), |ctx| {
            for _ in 0..8 {
                let granted = ctx.try_divide(|_| {
                    for _ in 0..1000 {
                        counter.method(|(v, _)| *v += 1);
                    }
                });
                if !granted {
                    for _ in 0..1000 {
                        counter.method(|(v, _)| *v += 1);
                    }
                }
            }
        });
        let _ = stats;
        assert_eq!(counter.into_inner().0, 8000);
    }

    #[test]
    fn read_and_into_inner() {
        let p = Protected::new(vec![1, 2, 3]);
        assert_eq!(p.read(|v| v.len()), 3);
        p.method(|v| v.push(4));
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_works() {
        let p: Protected<i64> = Protected::default();
        assert_eq!(p.into_inner(), 0);
    }
}
