//! Protected objects — the paper's §3.2 data-centric synchronization
//! ("This data-centric synchronization will itself be based on protected
//! objects. Protected objects are standard objects where only a single
//! method can be executed at any time", after Ada protected objects and
//! Hoare monitors).
//!
//! [`Protected<T>`] wraps a value so that *methods* (closures over `&mut
//! T`) run mutually exclusive, with the same oldest-waiter fairness
//! discipline as the hardware lock table: a ticket queue built on
//! `std::sync::{Mutex, Condvar}` hands the object to waiters strictly in
//! ticket order, like `munlock` handing the lock to the oldest waiter.
//! The ticket dispenser is a separate tiny mutex from the value itself,
//! so the queue stays observable ([`Protected::pending`]) while a method
//! runs.

use std::sync::{Condvar, Mutex};

/// Ticket dispenser state: the next ticket to hand out and the ticket
/// currently allowed to run its method.
#[derive(Debug, Default)]
struct Tickets {
    next: u64,
    serving: u64,
}

/// A protected object: only one method executes at any time.
///
/// ```
/// use capsule_rt::Protected;
///
/// let acc = Protected::new(0i64);
/// acc.method(|v| *v += 40);
/// let snapshot = acc.method(|v| {
///     *v += 2;
///     *v
/// });
/// assert_eq!(snapshot, 42);
/// assert_eq!(acc.into_inner(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Protected<T> {
    tickets: Mutex<Tickets>,
    turn: Condvar,
    // Only the serving ticket ever locks this, so it is uncontended; it
    // exists to move the value across threads without unsafe code.
    value: Mutex<T>,
}

impl<T> Protected<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Protected { tickets: Mutex::default(), turn: Condvar::new(), value: Mutex::new(value) }
    }

    /// Runs a method on the protected state, excluding every other method
    /// for its duration. Waiters are released strictly in ticket order
    /// (the paper's lock table hands locks to the oldest waiter).
    pub fn method<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut q = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = q.next;
        q.next += 1;
        while q.serving != ticket {
            q = self.turn.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        drop(q);
        let r = {
            let mut v = self.value.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut v)
        };
        let mut q = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
        q.serving += 1;
        drop(q);
        self.turn.notify_all();
        r
    }

    /// Reads the protected state through a method.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.method(|v| f(v))
    }

    /// Number of method calls that hold a ticket right now: the one
    /// running plus everyone queued behind it.
    pub fn pending(&self) -> u64 {
        let q = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
        q.next - q.serving
    }

    /// Consumes the wrapper.
    pub fn into_inner(self) -> T {
        self.value.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, RtConfig};

    #[test]
    fn methods_are_mutually_exclusive_under_division() {
        let counter = Protected::new((0i64, 0i64)); // (value, max_concurrency_seen)
        let ((), stats) = run(RtConfig::always(8), |ctx| {
            for _ in 0..8 {
                let granted = ctx.try_divide(|_| {
                    for _ in 0..1000 {
                        counter.method(|(v, _)| *v += 1);
                    }
                });
                if !granted {
                    for _ in 0..1000 {
                        counter.method(|(v, _)| *v += 1);
                    }
                }
            }
        });
        let _ = stats;
        assert_eq!(counter.into_inner().0, 8000);
    }

    #[test]
    fn read_and_into_inner() {
        let p = Protected::new(vec![1, 2, 3]);
        assert_eq!(p.read(|v| v.len()), 3);
        p.method(|v| v.push(4));
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_works() {
        let p: Protected<i64> = Protected::default();
        assert_eq!(p.into_inner(), 0);
    }

    #[test]
    fn tickets_serve_in_arrival_order() {
        // A blocker takes ticket 0 and holds the object until three
        // waiters have queued; each waiter is only spawned once the
        // previous one's ticket is visibly taken, so the ticket order —
        // and therefore the required completion order — is 1, 2, 3.
        let p = Protected::new(Vec::new());
        std::thread::scope(|s| {
            let p = &p;
            let blocker = s.spawn(move || {
                p.method(|v| {
                    v.push(0usize);
                    while p.pending() < 4 {
                        std::thread::yield_now();
                    }
                });
            });
            // Wait *before* each spawn: while the blocker is inside its
            // method, `serving` is pinned at 0, so `pending` can only
            // grow — these waits cannot miss a momentary state. (A wait
            // placed *after* the last spawn could livelock: the blocker
            // may see pending == 4 and let everyone drain before this
            // thread samples again.)
            for i in 1..=3usize {
                while p.pending() < i as u64 {
                    std::thread::yield_now();
                }
                s.spawn(move || p.method(move |v| v.push(i)));
            }
            blocker.join().expect("blocker");
        });
        assert_eq!(p.into_inner(), vec![0, 1, 2, 3]);
    }
}
