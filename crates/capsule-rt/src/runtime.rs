//! The conditional-division runtime on native threads.
//!
//! [`run`] executes a root worker and hands it a [`Ctx`] through which it
//! can *probe + divide* ([`Ctx::try_divide`]) exactly like the paper's
//! `nthr`: the request is granted only when a worker slot ("hardware
//! context") is free **and** the death-rate throttle is open. A denied
//! probe returns `false` and the worker simply continues sequentially —
//! the `case -1` of Figure 2.
//!
//! For workers that need to prepare data between the grant and the spawn
//! (e.g. partitioning an array they still own), [`Ctx::try_claim`] splits
//! the decision from the spawn: the returned [`Claim`] holds the slot and
//! either spawns the child or releases the slot on drop.
//!
//! The runtime is built entirely on `std::thread::scope` and
//! `std::sync` — the workspace links nothing outside std. Spawning an OS
//! thread costs microseconds where the paper's hardware division costs
//! ~15 cycles; the analog therefore demonstrates the *policy*
//! (conditional division, death-rate throttling, probe-on-every-
//! iteration adaptivity), not the hardware's latency numbers (DESIGN.md).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

use capsule_core::config::DivisionMode;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Worker slots — the analog of hardware contexts (8 in the paper).
    pub max_workers: usize,
    /// Division policy.
    pub mode: DivisionMode,
    /// Sliding window for the death-rate throttle (the analog of the
    /// paper's 128 cycles).
    pub death_window: Duration,
    /// Deaths inside the window that close the throttle; the paper uses
    /// half the context count.
    pub death_limit: usize,
}

impl RtConfig {
    /// The paper's policy with `workers` slots: greedy + throttle at
    /// `workers / 2` deaths.
    pub fn somt_like(workers: usize) -> Self {
        RtConfig {
            max_workers: workers,
            mode: DivisionMode::GreedyThrottled,
            death_window: Duration::from_micros(200),
            death_limit: (workers / 2).max(1),
        }
    }

    /// Cilk-like baseline: every division request is granted while a slot
    /// is free, with no throttle.
    pub fn always(workers: usize) -> Self {
        RtConfig { mode: DivisionMode::Greedy, ..Self::somt_like(workers) }
    }

    /// Sequential baseline: every probe fails.
    pub fn never() -> Self {
        RtConfig { mode: DivisionMode::Never, ..Self::somt_like(1) }
    }
}

/// Counters of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Probes issued.
    pub divisions_requested: u64,
    /// Probes granted.
    pub divisions_granted: u64,
    /// Probes denied because every slot was busy.
    pub denied_no_resource: u64,
    /// Probes denied by the death-rate throttle.
    pub denied_throttled: u64,
    /// Probes denied because division is disabled.
    pub denied_disabled: u64,
    /// Worker deaths.
    pub deaths: u64,
    /// Largest simultaneous worker count.
    pub max_live: u64,
}

impl RtStats {
    /// Fraction of probes granted, in [0, 1].
    pub fn grant_rate(&self) -> f64 {
        if self.divisions_requested == 0 {
            0.0
        } else {
            self.divisions_granted as f64 / self.divisions_requested as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    cfg: RtConfig,
    live: AtomicUsize,
    deaths: Mutex<VecDeque<Instant>>,
    requested: AtomicU64,
    granted: AtomicU64,
    denied_no_resource: AtomicU64,
    denied_throttled: AtomicU64,
    denied_disabled: AtomicU64,
    death_count: AtomicU64,
    max_live: AtomicU64,
}

impl Inner {
    fn throttled(&self) -> bool {
        let now = Instant::now();
        let mut deaths = self.deaths.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(&front) = deaths.front() {
            if now.duration_since(front) > self.cfg.death_window {
                deaths.pop_front();
            } else {
                break;
            }
        }
        deaths.len() >= self.cfg.death_limit
    }

    fn record_death(&self) {
        self.death_count.fetch_add(1, Ordering::Relaxed);
        self.deaths.lock().unwrap_or_else(|e| e.into_inner()).push_back(Instant::now());
    }

    /// Attempts to claim a worker slot under the division policy.
    fn try_grant(&self) -> bool {
        self.requested.fetch_add(1, Ordering::Relaxed);
        match self.cfg.mode {
            DivisionMode::Never => {
                self.denied_disabled.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            DivisionMode::GreedyThrottled => {
                if self.throttled() {
                    self.denied_throttled.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
            DivisionMode::Greedy => {}
        }
        // claim a slot (CAS loop so we never exceed max_workers)
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            if cur >= self.cfg.max_workers {
                self.denied_no_resource.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.live.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        self.granted.fetch_add(1, Ordering::Relaxed);
        self.max_live.fetch_max(cur as u64 + 1, Ordering::Relaxed);
        true
    }

    fn release_slot_as_death(&self) {
        self.live.fetch_sub(1, Ordering::AcqRel);
        self.record_death();
    }

    fn release_slot_cancelled(&self) {
        self.live.fetch_sub(1, Ordering::AcqRel);
        // a cancelled claim never became a worker: no death is recorded
    }
}

/// Worker context: the program's window onto the "architecture".
#[derive(Debug)]
pub struct Ctx<'scope, 'env> {
    inner: Arc<Inner>,
    scope: &'scope Scope<'scope, 'env>,
}

/// A granted-but-not-yet-spawned division (see [`Ctx::try_claim`]).
///
/// Dropping the claim without spawning releases the slot without counting
/// a worker death.
#[derive(Debug)]
pub struct Claim<'ctx, 'scope, 'env> {
    ctx: &'ctx Ctx<'scope, 'env>,
    spawned: bool,
}

impl<'ctx, 'scope, 'env> Claim<'ctx, 'scope, 'env> {
    /// Spawns the child worker on the claimed slot.
    pub fn spawn<F>(mut self, child: F)
    where
        F: FnOnce(&Ctx<'scope, 'env>) + Send + 'scope,
    {
        self.spawned = true;
        let inner = Arc::clone(&self.ctx.inner);
        let scope = self.ctx.scope;
        scope.spawn(move || {
            let ctx = Ctx { inner: Arc::clone(&inner), scope };
            child(&ctx);
            inner.release_slot_as_death();
        });
    }
}

impl Drop for Claim<'_, '_, '_> {
    fn drop(&mut self) {
        if !self.spawned {
            self.ctx.inner.release_slot_cancelled();
        }
    }
}

impl<'scope, 'env> Ctx<'scope, 'env> {
    /// Non-binding probe: would a division be granted right now?
    ///
    /// Like the paper's resource probing this is only a hint — the
    /// binding decision is made inside [`Ctx::try_divide`] /
    /// [`Ctx::try_claim`].
    pub fn probe(&self) -> bool {
        let free = self.inner.live.load(Ordering::Relaxed) < self.inner.cfg.max_workers;
        match self.inner.cfg.mode {
            DivisionMode::Never => false,
            DivisionMode::Greedy => free,
            DivisionMode::GreedyThrottled => free && !self.inner.throttled(),
        }
    }

    /// The probe half of `nthr`: on grant, returns a [`Claim`] holding the
    /// worker slot, letting the caller split its data before spawning.
    pub fn try_claim(&self) -> Option<Claim<'_, 'scope, 'env>> {
        if self.inner.try_grant() {
            Some(Claim { ctx: self, spawned: false })
        } else {
            None
        }
    }

    /// The probe + conditional division (`nthr`), one-shot form.
    ///
    /// On grant, `child` runs concurrently on a new worker and `true` is
    /// returned; on denial nothing is spawned and `false` is returned —
    /// the caller carries on sequentially (the `case -1` of Figure 2).
    pub fn try_divide<F>(&self, child: F) -> bool
    where
        F: FnOnce(&Ctx<'scope, 'env>) + Send + 'scope,
    {
        match self.try_claim() {
            Some(claim) => {
                claim.spawn(child);
                true
            }
            None => false,
        }
    }

    /// Number of free worker slots (the `nctx` instruction).
    pub fn free_slots(&self) -> usize {
        self.inner.cfg.max_workers.saturating_sub(self.inner.live.load(Ordering::Relaxed))
    }
}

/// Runs `root` as the ancestor worker and joins every divided worker
/// before returning.
///
/// # Panics
///
/// Panics if a worker panics, and if `cfg.max_workers` is zero.
pub fn run<'env, R, F>(cfg: RtConfig, root: F) -> (R, RtStats)
where
    F: for<'scope> FnOnce(&Ctx<'scope, 'env>) -> R,
{
    assert!(cfg.max_workers >= 1, "need at least the ancestor's slot");
    let inner = Arc::new(Inner {
        cfg,
        live: AtomicUsize::new(1), // the ancestor occupies a slot
        deaths: Mutex::new(VecDeque::new()),
        requested: AtomicU64::new(0),
        granted: AtomicU64::new(0),
        denied_no_resource: AtomicU64::new(0),
        denied_throttled: AtomicU64::new(0),
        denied_disabled: AtomicU64::new(0),
        death_count: AtomicU64::new(0),
        max_live: AtomicU64::new(1),
    });
    let result = std::thread::scope(|scope| {
        let ctx = Ctx { inner: Arc::clone(&inner), scope };
        root(&ctx)
        // scope joins every spawned worker here; a worker panic
        // propagates out of std::thread::scope, like the old harness
    });
    let stats = RtStats {
        divisions_requested: inner.requested.load(Ordering::Relaxed),
        divisions_granted: inner.granted.load(Ordering::Relaxed),
        denied_no_resource: inner.denied_no_resource.load(Ordering::Relaxed),
        denied_throttled: inner.denied_throttled.load(Ordering::Relaxed),
        denied_disabled: inner.denied_disabled.load(Ordering::Relaxed),
        deaths: inner.death_count.load(Ordering::Relaxed),
        max_live: inner.max_live.load(Ordering::Relaxed),
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_mode_denies_everything() {
        let (v, stats) = run(RtConfig::never(), |ctx| {
            assert!(!ctx.probe());
            assert!(!ctx.try_divide(|_| {}));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(stats.divisions_requested, 1);
        assert_eq!(stats.denied_disabled, 1);
        assert_eq!(stats.divisions_granted, 0);
    }

    #[test]
    fn divisions_run_concurrently_and_join() {
        use std::sync::atomic::AtomicI64;
        let total = AtomicI64::new(0);
        let ((), stats) = run(RtConfig::somt_like(4), |ctx| {
            for _ in 0..3 {
                let granted = ctx.try_divide(|_| {
                    total.fetch_add(10, Ordering::Relaxed);
                });
                if !granted {
                    total.fetch_add(10, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 30);
        assert_eq!(stats.divisions_requested, 3);
        assert!(stats.max_live <= 4);
    }

    #[test]
    fn cancelled_claim_releases_slot_without_death() {
        let ((), stats) = run(RtConfig::always(2), |ctx| {
            {
                let claim = ctx.try_claim();
                assert!(claim.is_some());
                assert_eq!(ctx.free_slots(), 0);
                drop(claim);
            }
            assert_eq!(ctx.free_slots(), 1);
        });
        assert_eq!(stats.divisions_granted, 1);
        assert_eq!(stats.deaths, 0);
    }

    #[test]
    fn slot_cap_is_respected() {
        use std::sync::atomic::AtomicU64 as A;
        let peak = A::new(0);
        let live = A::new(1);
        fn fanout<'env>(ctx: &Ctx<'_, 'env>, depth: usize, live: &'env A, peak: &'env A) {
            if depth == 0 {
                return;
            }
            for _ in 0..2 {
                ctx.try_divide(move |c| {
                    let l = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(l, Ordering::SeqCst);
                    fanout(c, depth - 1, live, peak);
                    std::thread::sleep(Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
        let ((), stats) = run(RtConfig::always(4), |ctx| fanout(ctx, 4, &live, &peak));
        assert!(stats.max_live <= 4, "max_live {}", stats.max_live);
        assert!(peak.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn throttle_closes_under_death_churn() {
        let cfg = RtConfig {
            max_workers: 8,
            mode: DivisionMode::GreedyThrottled,
            death_window: Duration::from_secs(3600), // effectively permanent
            death_limit: 4,
        };
        let ((), stats) = run(cfg, |ctx| {
            // burn through short-lived workers; after 4 deaths the
            // throttle must close for the rest of the run
            let mut denied = false;
            for _ in 0..64 {
                if !ctx.try_divide(|_| {}) {
                    denied = true;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(denied);
        });
        assert!(stats.denied_throttled > 0, "stats: {stats:?}");
        assert!(stats.deaths >= 4);
    }

    #[test]
    fn grant_rate_math() {
        let s = RtStats { divisions_requested: 10, divisions_granted: 4, ..Default::default() };
        assert!((s.grant_rate() - 0.4).abs() < 1e-12);
        assert_eq!(RtStats::default().grant_rate(), 0.0);
    }
}

impl std::fmt::Display for RtStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} probes: {} granted ({:.0}%), {} no-resource, {} throttled, {} disabled; \
             {} deaths, peak {} workers",
            self.divisions_requested,
            self.divisions_granted,
            100.0 * self.grant_rate(),
            self.denied_no_resource,
            self.denied_throttled,
            self.denied_disabled,
            self.deaths,
            self.max_live
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn stats_display_is_informative() {
        let s = RtStats {
            divisions_requested: 10,
            divisions_granted: 5,
            denied_throttled: 2,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("10 probes"));
        assert!(text.contains("5 granted (50%)"));
        assert!(text.contains("2 throttled"));
    }
}
