//! Ready-made component algorithms on the native runtime: the paper's
//! core workloads expressed with probe + divide on real threads.

use crate::runtime::{run, Ctx, RtConfig, RtStats};

/// Minimum slice length worth dividing for.
const SORT_LEAF: usize = 512;
const SUM_LEAF: usize = 4096;

fn sort_worker<'scope, 'env, T: Ord + Send>(ctx: &Ctx<'scope, 'env>, mut data: &'env mut [T]) {
    loop {
        if data.len() <= SORT_LEAF {
            data.sort_unstable();
            return;
        }
        // probe first (try_claim), so the slot decision precedes the
        // partition — like nthr's probe preceding the split
        match ctx.try_claim() {
            Some(claim) => {
                let p = partition(data);
                let (left, rest) = data.split_at_mut(p);
                let right = &mut rest[1..];
                claim.spawn(move |c| sort_worker(c, right));
                data = left;
            }
            None => {
                // denied: recurse on the smaller half (bounded stack),
                // loop on the larger — probing again next iteration
                let p = partition(data);
                let (left, rest) = data.split_at_mut(p);
                let right = &mut rest[1..];
                if left.len() < right.len() {
                    sort_worker(ctx, left);
                    data = right;
                } else {
                    sort_worker(ctx, right);
                    data = left;
                }
            }
        }
    }
}

/// Component quicksort: at every partition the worker probes the runtime
/// and hands the right half to a divided worker when granted; otherwise it
/// recurses sequentially — probing again at the next partition, the
/// paper's "constantly probe the architecture" behaviour.
pub fn capsule_sort<T: Ord + Send>(cfg: RtConfig, data: &mut [T]) -> RtStats {
    let (_, stats) = run(cfg, |ctx| sort_worker(ctx, data));
    stats
}

/// Lomuto partition with a median-of-three pivot; returns the pivot index.
fn partition<T: Ord>(data: &mut [T]) -> usize {
    let len = data.len();
    let mid = len / 2;
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[0] > data[len - 1] {
        data.swap(0, len - 1);
    }
    if data[mid] > data[len - 1] {
        data.swap(mid, len - 1);
    }
    data.swap(mid, len - 1);
    let mut store = 0;
    for i in 0..len - 1 {
        if data[i] <= data[len - 1] {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, len - 1);
    store
}

fn sum_worker<'scope, 'env>(
    ctx: &Ctx<'scope, 'env>,
    mut data: &'env [i64],
    total: &'env std::sync::atomic::AtomicI64,
) {
    use std::sync::atomic::Ordering;
    let mut local = 0i64;
    loop {
        if data.len() <= SUM_LEAF {
            local += data.iter().sum::<i64>();
            break;
        }
        let (left, right) = data.split_at(data.len() / 2);
        if ctx.try_divide(move |c| sum_worker(c, right, total)) {
            data = left;
        } else {
            local += right.iter().sum::<i64>();
            data = left;
        }
    }
    total.fetch_add(local, Ordering::Relaxed);
}

/// Component reduction: sums a slice by dividing in half while the
/// architecture grants probes, merging partial results on worker death
/// ("progressively combining local results", paper §3.2).
pub fn capsule_sum(cfg: RtConfig, data: &[i64]) -> (i64, RtStats) {
    use std::sync::atomic::{AtomicI64, Ordering};
    let total = AtomicI64::new(0);
    let (_, stats) = run(cfg, |ctx| sum_worker(ctx, data, &total));
    (total.load(Ordering::Relaxed), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_matches_std_sort() {
        let mut data: Vec<i64> = (0..20_000).map(|i| (i * 2654435761u64 as i64) % 10_007).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let stats = capsule_sort(RtConfig::somt_like(8), &mut data);
        assert_eq!(data, expected);
        assert!(stats.divisions_requested > 0);
    }

    #[test]
    fn sort_sequential_mode_still_sorts() {
        let mut data: Vec<i64> = (0..5000).rev().collect();
        let stats = capsule_sort(RtConfig::never(), &mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(stats.divisions_granted, 0);
    }

    #[test]
    fn sort_always_mode_sorts() {
        let mut data: Vec<i64> = (0..30_000).map(|i| (i * 7919) % 1000).collect();
        let stats = capsule_sort(RtConfig::always(8), &mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.max_live <= 8);
    }

    #[test]
    fn sum_is_exact_in_all_modes() {
        let data: Vec<i64> = (0..100_000).map(|i| (i % 1000) - 500).collect();
        let expected: i64 = data.iter().sum();
        for cfg in [RtConfig::never(), RtConfig::always(8), RtConfig::somt_like(8)] {
            let (got, _) = capsule_sum(cfg, &data);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn partition_places_pivot() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7];
        let p = partition(&mut v);
        for (i, x) in v.iter().enumerate() {
            if i < p {
                assert!(x <= &v[p]);
            } else if i > p {
                assert!(x >= &v[p]);
            }
        }
    }
}
