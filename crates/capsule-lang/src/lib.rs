//! Capsule C — the paper's source-level component toolchain (§3.2).
//!
//! The paper extends C/C++ with `worker` and `coworker` constructs and
//! lowers them with a source pre-processor + assembly post-processor.
//! This crate is that toolchain for CAP64: a small C-like language whose
//! `coworker f(args);` statement compiles to exactly the probe/divide
//! `switch` of the paper's Figure 2 — a denied probe falls back to a
//! plain sequential call; a granted probe lets the hardware-copied child
//! take the call on a pooled stack and die into the join counter.
//!
//! ```text
//! global total;
//! global arr[256];
//!
//! worker sum(lo, hi) {
//!     while (hi - lo > 32) {
//!         let mid = lo + (hi - lo) / 2;
//!         coworker sum(mid, hi);   // the architecture decides!
//!         hi = mid;
//!     }
//!     let acc = 0;
//!     while (lo < hi) { acc = acc + arr[lo]; lo = lo + 1; }
//!     lock (&total) { total = total + acc; }
//! }
//!
//! worker main() {
//!     let i = 0;
//!     while (i < 256) { arr[i] = i; i = i + 1; }
//!     coworker sum(0, 256);
//!     join;
//!     out(total);
//! }
//! ```
//!
//! # Example
//!
//! ```
//! let program = capsule_lang::compile(
//!     "worker main() { out(6 * 7); }",
//! )?;
//! assert!(program.text.len() > 4);
//! # Ok::<(), capsule_lang::LangError>(())
//! ```
//!
//! Language reference:
//!
//! - all values are 64-bit integers;
//! - `global g;` / `global g = init;` / `global a[N];` declare globals
//!   (zero/`init`-filled), addressable with `&g` / `&a[i]`;
//! - `worker f(a, b) { ... }` defines a worker (≤ 6 parameters, return
//!   with `return e;`);
//! - statements: `let`, assignment, `if`/`else`, `while`, `lock (addr)
//!   { ... }` (hardware `mlock`/`munlock`), `coworker f(args);`, `join;`,
//!   `out(e);`, `halt;`;
//! - builtins: `tid()` (worker id), `nctx()` (free hardware contexts);
//! - `main` is the ancestor; the program halts when it returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod parser;
pub mod token;

pub use codegen::{compile, compile_with, Options};
pub use parser::parse;
pub use token::{lex, LangError, Pos};
