//! Tokens and the lexer of Capsule C.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    // keywords
    /// `worker`
    Worker,
    /// `coworker`
    Coworker,
    /// `global`
    Global,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `lock`
    Lock,
    /// `join`
    Join,
    /// `out`
    Out,
    /// `halt`
    Halt,
    /// `mark`
    Mark,
    /// `break`
    Break,
    /// `continue`
    Continue,
    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    // operators
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Worker => write!(f, "`worker`"),
            Tok::Coworker => write!(f, "`coworker`"),
            Tok::Global => write!(f, "`global`"),
            Tok::Let => write!(f, "`let`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::While => write!(f, "`while`"),
            Tok::Return => write!(f, "`return`"),
            Tok::Lock => write!(f, "`lock`"),
            Tok::Join => write!(f, "`join`"),
            Tok::Out => write!(f, "`out`"),
            Tok::Halt => write!(f, "`halt`"),
            Tok::Mark => write!(f, "`mark`"),
            Tok::Break => write!(f, "`break`"),
            Tok::Continue => write!(f, "`continue`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Eq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexing / parsing / checking / code-generation errors, with a position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Where the problem is.
    pub pos: Pos,
    /// Description.
    pub msg: String,
}

impl LangError {
    pub(crate) fn new(pos: Pos, msg: impl Into<String>) -> Self {
        LangError { pos, msg: msg.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LangError {}

/// Lexes a source string.
///
/// # Errors
///
/// Returns a [`LangError`] on an unknown character or malformed literal.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        // skip whitespace and comments
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('/') => {
                    let mut la = chars.clone();
                    la.next();
                    match la.peek() {
                        Some('/') => {
                            while let Some(&c) = chars.peek() {
                                if c == '\n' {
                                    break;
                                }
                                bump!();
                            }
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Spanned { tok: Tok::Eof, pos });
            return Ok(out);
        };
        let tok = match c {
            '0'..='9' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let v = if let Some(hex) = s.strip_prefix("0x") {
                    i64::from_str_radix(&hex.replace('_', ""), 16)
                } else {
                    s.replace('_', "").parse()
                }
                .map_err(|_| LangError::new(pos, format!("bad integer literal `{s}`")))?;
                Tok::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "worker" => Tok::Worker,
                    "coworker" => Tok::Coworker,
                    "global" => Tok::Global,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "lock" => Tok::Lock,
                    "join" => Tok::Join,
                    "out" => Tok::Out,
                    "halt" => Tok::Halt,
                    "mark" => Tok::Mark,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    _ => Tok::Ident(s),
                }
            }
            _ => {
                bump!();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, want: char| {
                    if chars.peek() == Some(&want) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let t = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '%' => Tok::Percent,
                    '^' => Tok::Caret,
                    '=' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Eq
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Ne
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Le
                        } else if two(&mut chars, '<') {
                            col += 1;
                            Tok::Shl
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Ge
                        } else if two(&mut chars, '>') {
                            col += 1;
                            Tok::Shr
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            col += 1;
                            Tok::AndAnd
                        } else {
                            Tok::Amp
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            col += 1;
                            Tok::OrOr
                        } else {
                            Tok::Pipe
                        }
                    }
                    other => {
                        return Err(LangError::new(pos, format!("unexpected character `{other}`")))
                    }
                };
                t
            }
        };
        out.push(Spanned { tok, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("worker main() { let x = 3; }"),
            vec![
                Tok::Worker,
                Tok::Ident("main".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(3),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("== != <= >= << >> && || < >"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_hex_and_underscores() {
        assert_eq!(toks("0x10 1_000"), vec![Tok::Int(16), Tok::Int(1000), Tok::Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(toks("1 // comment\n2"), vec![Tok::Int(1), Tok::Int(2), Tok::Eof]);
    }

    #[test]
    fn tracks_positions() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_chars() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.msg.contains('@'));
        assert_eq!(e.pos.line, 1);
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(lex("0x").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }
}
