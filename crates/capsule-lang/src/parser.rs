//! Recursive-descent parser for Capsule C.

use crate::ast::*;
use crate::token::{lex, LangError, Pos, Spanned, Tok};

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), LangError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::new(self.pos(), format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<(String, Pos), LangError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Ident(s) => Ok((s, pos)),
            other => Err(LangError::new(pos, format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Ast, LangError> {
        let mut ast = Ast::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(ast),
                Tok::Global => {
                    self.bump();
                    let (name, pos) = self.ident()?;
                    let mut len = None;
                    let mut init = 0;
                    if *self.peek() == Tok::LBracket {
                        self.bump();
                        let n = match self.bump() {
                            Tok::Int(v) if v > 0 => v as usize,
                            other => {
                                return Err(LangError::new(
                                    pos,
                                    format!(
                                        "array length must be a positive literal, found {other}"
                                    ),
                                ))
                            }
                        };
                        self.expect(Tok::RBracket)?;
                        len = Some(n);
                    } else if *self.peek() == Tok::Assign {
                        self.bump();
                        let neg = if *self.peek() == Tok::Minus {
                            self.bump();
                            true
                        } else {
                            false
                        };
                        init = match self.bump() {
                            Tok::Int(v) => {
                                if neg {
                                    -v
                                } else {
                                    v
                                }
                            }
                            other => {
                                return Err(LangError::new(
                                    pos,
                                    format!("global initializer must be a literal, found {other}"),
                                ))
                            }
                        };
                    }
                    self.expect(Tok::Semi)?;
                    ast.globals.push(GlobalDef { name, len, init, pos });
                }
                Tok::Worker => {
                    self.bump();
                    let (name, pos) = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            let (p, _) = self.ident()?;
                            params.push(p);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    let body = self.block()?;
                    ast.workers.push(WorkerDef { name, params, body, pos });
                }
                other => {
                    return Err(LangError::new(
                        self.pos(),
                        format!("expected `global` or `worker` at top level, found {other}"),
                    ))
                }
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(LangError::new(self.pos(), "unterminated block".to_string()));
            }
            out.push(self.stmt()?);
        }
        self.bump();
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let (name, pos) = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let(name, e, pos))
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let c = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let els = if *self.peek() == Tok::Else {
                    self.bump();
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then, els))
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let c = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::While(c, self.block()?))
            }
            Tok::Return => {
                let pos = self.pos();
                self.bump();
                let e = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e, pos))
            }
            Tok::Out => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Out(e))
            }
            Tok::Halt => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Halt)
            }
            Tok::Join => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Join)
            }
            Tok::Lock => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::Lock(e, self.block()?))
            }
            Tok::Break => {
                let pos = self.pos();
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Continue => {
                let pos = self.pos();
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::Mark => {
                let pos = self.pos();
                self.bump();
                let id = match self.bump() {
                    Tok::Int(v) if (0..=u16::MAX as i64).contains(&v) => v as u16,
                    other => {
                        return Err(LangError::new(
                            pos,
                            format!("`mark` needs a literal section id 0..65535, found {other}"),
                        ))
                    }
                };
                Ok(Stmt::Mark(id, self.block()?))
            }
            Tok::Coworker => {
                let pos = self.pos();
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(Tok::LParen)?;
                let args = self.args()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Coworker(name, args, pos))
            }
            Tok::Ident(name) => {
                let pos = self.pos();
                // lookahead: assignment or expression statement
                self.bump();
                match self.peek().clone() {
                    Tok::Assign => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign(Place::Var(name, pos), e))
                    }
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if *self.peek() == Tok::Assign {
                            self.bump();
                            let e = self.expr()?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::Assign(Place::Index(name, Box::new(idx), pos), e))
                        } else {
                            Err(LangError::new(
                                self.pos(),
                                "array element may only appear here as an assignment target"
                                    .to_string(),
                            ))
                        }
                    }
                    Tok::LParen => {
                        self.bump();
                        let args = self.args()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Expr(Expr::Call(name, args, pos)))
                    }
                    other => Err(LangError::new(
                        self.pos(),
                        format!("expected `=`, `[` or `(` after identifier, found {other}"),
                    )),
                }
            }
            other => {
                Err(LangError::new(self.pos(), format!("expected a statement, found {other}")))
            }
        }
    }

    /// Argument list up to and including the closing `)`.
    fn args(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut out = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                out.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let r = self.and_expr()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let r = self.cmp_expr()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bitor_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.bitor_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn bitor_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bitxor_expr()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            let r = self.bitxor_expr()?;
            e = Expr::Bin(BinOp::BitOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.bitand_expr()?;
        while *self.peek() == Tok::Caret {
            self.bump();
            let r = self.bitand_expr()?;
            e = Expr::Bin(BinOp::BitXor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.shift_expr()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            let r = self.shift_expr()?;
            e = Expr::Bin(BinOp::BitAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.add_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            Tok::Amp => {
                let pos = self.pos();
                self.bump();
                let (name, _) = self.ident()?;
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::AddrOf(name, Some(Box::new(idx)), pos))
                } else {
                    Ok(Expr::AddrOf(name, None, pos))
                }
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let args = self.args()?;
                    match name.as_str() {
                        "tid" if args.is_empty() => Ok(Expr::Tid),
                        "nctx" if args.is_empty() => Ok(Expr::Nctx),
                        _ => Ok(Expr::Call(name, args, pos)),
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx), pos))
                }
                _ => Ok(Expr::Var(name, pos)),
            },
            other => Err(LangError::new(pos, format!("expected an expression, found {other}"))),
        }
    }
}

/// Parses Capsule C source into an [`Ast`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with its position.
pub fn parse(src: &str) -> Result<Ast, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_workers() {
        let ast =
            parse("global total;\nglobal big = -5;\nglobal arr[64];\nworker main() { out(1); }")
                .unwrap();
        assert_eq!(ast.globals.len(), 3);
        assert_eq!(ast.globals[0].name, "total");
        assert_eq!(ast.globals[1].init, -5);
        assert_eq!(ast.globals[2].len, Some(64));
        assert_eq!(ast.workers.len(), 1);
    }

    #[test]
    fn parses_precedence() {
        let ast = parse("worker main() { let x = 1 + 2 * 3 < 4 << 1; }").unwrap();
        let Stmt::Let(_, e, _) = &ast.workers[0].body[0] else { panic!() };
        // (1 + (2*3)) < (4 << 1)
        let Expr::Bin(BinOp::Lt, l, r) = e else { panic!("{e:?}") };
        assert!(matches!(**l, Expr::Bin(BinOp::Add, _, _)));
        assert!(matches!(**r, Expr::Bin(BinOp::Shl, _, _)));
    }

    #[test]
    fn parses_control_flow_and_calls() {
        let ast = parse(
            r"
worker fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
worker main() { out(fib(10)); }
",
        )
        .unwrap();
        assert_eq!(ast.workers[0].params, vec!["n"]);
        assert!(matches!(ast.workers[0].body[0], Stmt::If(..)));
    }

    #[test]
    fn parses_capsule_statements() {
        let ast = parse(
            r"
global total;
worker w(lo, hi) {
    lock (&total) { total = total + lo; }
}
worker main() {
    coworker w(0, 10);
    join;
    halt;
}
",
        )
        .unwrap();
        assert!(matches!(ast.workers[0].body[0], Stmt::Lock(..)));
        assert!(matches!(ast.workers[1].body[0], Stmt::Coworker(..)));
        assert!(matches!(ast.workers[1].body[1], Stmt::Join));
        assert!(matches!(ast.workers[1].body[2], Stmt::Halt));
    }

    #[test]
    fn parses_else_if_chains() {
        let ast =
            parse("worker main() { if (1) { } else if (2) { out(2); } else { out(3); } }").unwrap();
        let Stmt::If(_, _, els) = &ast.workers[0].body[0] else { panic!() };
        assert!(matches!(els[0], Stmt::If(..)));
    }

    #[test]
    fn parses_addr_of() {
        let ast = parse("global a[4]; worker main() { lock (&a[2]) { } lock (&a) { } }").unwrap();
        let Stmt::Lock(e, _) = &ast.workers[0].body[0] else { panic!() };
        assert!(matches!(e, Expr::AddrOf(_, Some(_), _)));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("worker main() {\n  let = 3;\n}").unwrap_err();
        assert_eq!(e.pos.line, 2);
        assert!(e.msg.contains("identifier"));

        let e = parse("worker main() { out(1) }").unwrap_err();
        assert!(e.msg.contains("`;`"));

        let e = parse("fn main() {}").unwrap_err();
        assert!(e.msg.contains("top level"));
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("worker main() { out(1);").unwrap_err().msg.contains("unterminated"));
    }
}
