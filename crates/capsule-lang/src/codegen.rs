//! Code generation: Capsule C → CAP64.
//!
//! The `coworker` statement compiles to exactly the paper's Figure 2
//! lowering: stage the arguments, take one join token, issue `nthr`, and
//! branch on the probe result — the child (a hardware register copy)
//! allocates a pooled stack, runs the worker and dies; a denied probe
//! returns the token and makes a plain sequential call instead.
//!
//! Calling convention: up to 6 arguments in `A0`–`A5`, return value in
//! `A0`, return address in `ra`, frame on the worker's private pooled
//! stack (`sp`). Expression temporaries live in `r7`–`r19`; `r20`/`r21`
//! are address scratch; `r24`–`r28` belong to the runtime fragments.

use std::collections::HashMap;

use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;
use capsule_isa::rtlib::{
    emit_join_spin, emit_locked_add, emit_stack_alloc, emit_stack_free, init_runtime, Labels,
    Runtime,
};

use crate::ast::*;
use crate::parser::parse;
use crate::token::{LangError, Pos};

/// Expression temporaries.
const EXPR_REGS: [Reg; 8] = [Reg(7), Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13), Reg(14)];
/// Registers used for parameters/locals of small functions (register
/// frames); spilled around calls.
const LOCAL_REGS: [Reg; 8] =
    [Reg(15), Reg(16), Reg(17), Reg(18), Reg(19), Reg(21), Reg(23), Reg(31)];
const SCRATCH_A: Reg = Reg(20);
const PROBE: Reg = Reg(22);
const ARG_REGS: [Reg; 6] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

/// Compilation knobs.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Pooled worker stacks (live workers on an 8-context machine with a
    /// 16-entry context stack never exceed 24).
    pub pool_slots: usize,
    /// Bytes per pooled stack.
    pub stack_bytes: usize,
    /// Heap headroom beyond globals and stacks.
    pub heap_bytes: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { pool_slots: 32, stack_bytes: 8192, heap_bytes: 1 << 16 }
    }
}

#[derive(Debug, Clone, Copy)]
enum GlobalKind {
    Scalar(u64),
    /// Base address; element count is only needed at declaration time.
    Array(u64),
}

struct FnSig {
    params: usize,
    label: String,
}

struct Cg<'a> {
    a: Asm,
    labels: Labels,
    rt: Runtime,
    globals: HashMap<String, GlobalKind>,
    fns: HashMap<String, FnSig>,
    // per-function state
    scopes: Vec<HashMap<String, usize>>, // name -> frame slot
    next_slot: usize,
    /// (continue-target, break-target, lock depth at entry) of enclosing
    /// `while`s.
    loop_labels: Vec<(String, String, usize)>,
    /// Number of enclosing `lock` blocks (guards against control flow
    /// skipping a `munlock`).
    lock_depth: usize,
    /// Slots live in registers instead of the frame when the function is
    /// small enough (8 or fewer params + locals + lock temporaries).
    reg_frame: bool,
    epilogue: String,
    ast: &'a Ast,
}

/// Number of `let` statements in a body (slots are never reused, so the
/// frame size is params + total lets).
fn count_lets(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::Let(..) => 1,
            Stmt::If(_, t, e) => count_lets(t) + count_lets(e),
            Stmt::While(_, b) | Stmt::Lock(_, b) => count_lets(b),
            _ => 0,
        })
        .sum()
}

impl Cg<'_> {
    fn err(pos: Pos, msg: impl Into<String>) -> LangError {
        LangError::new(pos, msg)
    }

    fn lookup_slot(&self, name: &str) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn temp(&self, depth: usize, pos: Pos) -> Result<Reg, LangError> {
        EXPR_REGS.get(depth).copied().ok_or_else(|| {
            Self::err(
                pos,
                format!("expression too deeply nested (max {} temporaries)", EXPR_REGS.len()),
            )
        })
    }

    /// Loads the frame slot address offset for `slot`.
    fn slot_off(slot: usize) -> i64 {
        8 * slot as i64
    }

    /// Reads slot `slot` into `d`.
    fn load_slot(&mut self, d: Reg, slot: usize) {
        if self.reg_frame {
            self.a.mv(d, LOCAL_REGS[slot]);
        } else {
            self.a.ld(d, Self::slot_off(slot), Reg::SP);
        }
    }

    /// Writes `s` into slot `slot`.
    fn store_slot(&mut self, s: Reg, slot: usize) {
        if self.reg_frame {
            self.a.mv(LOCAL_REGS[slot], s);
        } else {
            self.a.st(s, Self::slot_off(slot), Reg::SP);
        }
    }

    /// Spills the register frame around a nested call.
    fn save_locals(&mut self) {
        if self.reg_frame {
            for &r in &LOCAL_REGS[..self.next_slot] {
                self.a.push_reg(r);
            }
        }
    }

    fn restore_locals(&mut self) {
        if self.reg_frame {
            for &r in LOCAL_REGS[..self.next_slot].iter().rev() {
                self.a.pop_reg(r);
            }
        }
    }

    // ---------------- expressions ----------------

    /// Evaluates `e` into `EXPR_REGS[depth]`.
    fn expr(&mut self, e: &Expr, depth: usize) -> Result<(), LangError> {
        match e {
            Expr::Int(v) => {
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                self.a.li(d, *v);
            }
            Expr::Var(name, pos) => {
                let d = self.temp(depth, *pos)?;
                if let Some(slot) = self.lookup_slot(name) {
                    self.load_slot(d, slot);
                } else {
                    match self.globals.get(name) {
                        Some(GlobalKind::Scalar(addr)) => {
                            self.a.li(SCRATCH_A, *addr as i64);
                            self.a.ld(d, 0, SCRATCH_A);
                        }
                        Some(GlobalKind::Array(_)) => {
                            return Err(Self::err(
                                *pos,
                                format!("array `{name}` needs an index (or use `&{name}`)"),
                            ))
                        }
                        None => {
                            return Err(Self::err(*pos, format!("undeclared variable `{name}`")))
                        }
                    }
                }
            }
            Expr::Index(name, idx, pos) => {
                let base = match self.globals.get(name) {
                    Some(GlobalKind::Array(addr)) => *addr,
                    Some(GlobalKind::Scalar(_)) => {
                        return Err(Self::err(*pos, format!("`{name}` is a scalar, not an array")))
                    }
                    None => return Err(Self::err(*pos, format!("undeclared array `{name}`"))),
                };
                self.expr(idx, depth)?;
                let d = self.temp(depth, *pos)?;
                self.a.slli(d, d, 3);
                self.a.li(SCRATCH_A, base as i64);
                self.a.add(d, d, SCRATCH_A);
                self.a.ld(d, 0, d);
            }
            Expr::AddrOf(name, idx, pos) => {
                let (base, is_array) = match self.globals.get(name) {
                    Some(GlobalKind::Scalar(a)) => (*a, false),
                    Some(GlobalKind::Array(a)) => (*a, true),
                    None => {
                        return Err(Self::err(
                            *pos,
                            format!("`&` needs a global; `{name}` is not one"),
                        ))
                    }
                };
                match idx {
                    None => {
                        let d = self.temp(depth, *pos)?;
                        let _ = is_array;
                        self.a.li(d, base as i64);
                    }
                    Some(idx) => {
                        if !is_array {
                            return Err(Self::err(
                                *pos,
                                format!("`{name}` is a scalar; `&{name}[..]` is invalid"),
                            ));
                        }
                        self.expr(idx, depth)?;
                        let d = self.temp(depth, *pos)?;
                        self.a.slli(d, d, 3);
                        self.a.li(SCRATCH_A, base as i64);
                        self.a.add(d, d, SCRATCH_A);
                    }
                }
            }
            Expr::Un(op, inner) => {
                self.expr(inner, depth)?;
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                match op {
                    UnOp::Neg => self.a.sub(d, Reg::ZERO, d),
                    UnOp::Not => {
                        self.a.sltu(d, Reg::ZERO, d);
                        self.a.xori(d, d, 1);
                    }
                }
            }
            Expr::Bin(BinOp::And, l, r) => {
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                let end = self.labels.fresh("and_end");
                self.expr(l, depth)?;
                self.a.sltu(d, Reg::ZERO, d);
                self.a.beq(d, Reg::ZERO, &end);
                self.expr(r, depth)?;
                self.a.sltu(d, Reg::ZERO, d);
                self.a.bind(&end);
            }
            Expr::Bin(BinOp::Or, l, r) => {
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                let end = self.labels.fresh("or_end");
                self.expr(l, depth)?;
                self.a.sltu(d, Reg::ZERO, d);
                self.a.bne(d, Reg::ZERO, &end);
                self.expr(r, depth)?;
                self.a.sltu(d, Reg::ZERO, d);
                self.a.bind(&end);
            }
            Expr::Bin(op, l, r) => {
                self.expr(l, depth)?;
                self.expr(r, depth + 1)?;
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                let s = self.temp(depth + 1, Pos { line: 0, col: 0 })?;
                match op {
                    BinOp::Add => self.a.add(d, d, s),
                    BinOp::Sub => self.a.sub(d, d, s),
                    BinOp::Mul => self.a.mul(d, d, s),
                    BinOp::Div => self.a.div(d, d, s),
                    BinOp::Rem => self.a.rem(d, d, s),
                    BinOp::Shl => self.a.sll(d, d, s),
                    BinOp::Shr => self.a.sra(d, d, s),
                    BinOp::BitAnd => self.a.and(d, d, s),
                    BinOp::BitOr => self.a.or(d, d, s),
                    BinOp::BitXor => self.a.xor(d, d, s),
                    BinOp::Lt => self.a.slt(d, d, s),
                    BinOp::Gt => self.a.slt(d, s, d),
                    BinOp::Le => {
                        self.a.slt(d, s, d);
                        self.a.xori(d, d, 1);
                    }
                    BinOp::Ge => {
                        self.a.slt(d, d, s);
                        self.a.xori(d, d, 1);
                    }
                    BinOp::Eq => {
                        self.a.sub(d, d, s);
                        self.a.sltu(d, Reg::ZERO, d);
                        self.a.xori(d, d, 1);
                    }
                    BinOp::Ne => {
                        self.a.sub(d, d, s);
                        self.a.sltu(d, Reg::ZERO, d);
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Expr::Call(name, args, pos) => {
                self.call(name, args, *pos, depth)?;
                let d = self.temp(depth, *pos)?;
                self.a.mv(d, Reg::A0);
            }
            Expr::Tid => {
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                self.a.tid(d);
            }
            Expr::Nctx => {
                let d = self.temp(depth, Pos { line: 0, col: 0 })?;
                self.a.nctx(d);
            }
        }
        Ok(())
    }

    /// Emits a call with `args`; result left in `A0`. Live expression
    /// temporaries below `depth` are saved around the call.
    fn call(&mut self, name: &str, args: &[Expr], pos: Pos, depth: usize) -> Result<(), LangError> {
        let label = {
            let sig = self
                .fns
                .get(name)
                .ok_or_else(|| Self::err(pos, format!("unknown worker `{name}`")))?;
            if sig.params != args.len() {
                return Err(Self::err(
                    pos,
                    format!("`{name}` takes {} argument(s), got {}", sig.params, args.len()),
                ));
            }
            sig.label.clone()
        };
        for (i, arg) in args.iter().enumerate() {
            self.expr(arg, depth + i)?;
        }
        // save the register frame and live outer temporaries
        self.save_locals();
        for &r in &EXPR_REGS[..depth] {
            self.a.push_reg(r);
        }
        for (i, _) in args.iter().enumerate() {
            self.a.mv(ARG_REGS[i], self.temp(depth + i, pos)?);
        }
        self.a.call(&label);
        for &r in EXPR_REGS[..depth].iter().rev() {
            self.a.pop_reg(r);
        }
        self.restore_locals();
        Ok(())
    }

    // ---------------- statements ----------------

    fn block(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Let(name, e, pos) => {
                if self.scopes.last().expect("scope").contains_key(name) {
                    return Err(Self::err(*pos, format!("`{name}` already defined in this scope")));
                }
                if self.globals.contains_key(name) {
                    return Err(Self::err(*pos, format!("`{name}` shadows a global")));
                }
                self.expr(e, 0)?;
                let slot = self.next_slot;
                self.next_slot += 1;
                self.scopes.last_mut().expect("scope").insert(name.clone(), slot);
                self.store_slot(EXPR_REGS[0], slot);
            }
            Stmt::Assign(place, e) => {
                self.expr(e, 0)?;
                match place {
                    Place::Var(name, pos) => {
                        if let Some(slot) = self.lookup_slot(name) {
                            self.store_slot(EXPR_REGS[0], slot);
                        } else {
                            match self.globals.get(name) {
                                Some(GlobalKind::Scalar(addr)) => {
                                    self.a.li(SCRATCH_A, *addr as i64);
                                    self.a.st(EXPR_REGS[0], 0, SCRATCH_A);
                                }
                                Some(GlobalKind::Array(_)) => {
                                    return Err(Self::err(
                                        *pos,
                                        format!("array `{name}` needs an index"),
                                    ))
                                }
                                None => {
                                    return Err(Self::err(
                                        *pos,
                                        format!("undeclared variable `{name}`"),
                                    ))
                                }
                            }
                        }
                    }
                    Place::Index(name, idx, pos) => {
                        let base = match self.globals.get(name) {
                            Some(GlobalKind::Array(addr)) => *addr,
                            _ => {
                                return Err(Self::err(
                                    *pos,
                                    format!("`{name}` is not a global array"),
                                ))
                            }
                        };
                        self.expr(idx, 1)?;
                        self.a.slli(EXPR_REGS[1], EXPR_REGS[1], 3);
                        self.a.li(SCRATCH_A, base as i64);
                        self.a.add(EXPR_REGS[1], EXPR_REGS[1], SCRATCH_A);
                        self.a.st(EXPR_REGS[0], 0, EXPR_REGS[1]);
                    }
                }
            }
            Stmt::If(cond, then, els) => {
                let l_else = self.labels.fresh("else");
                let l_end = self.labels.fresh("endif");
                self.expr(cond, 0)?;
                self.a.beq(EXPR_REGS[0], Reg::ZERO, &l_else);
                self.block(then)?;
                self.a.j(&l_end);
                self.a.bind(&l_else);
                self.block(els)?;
                self.a.bind(&l_end);
            }
            Stmt::While(cond, body) => {
                let l_top = self.labels.fresh("while");
                let l_end = self.labels.fresh("endwhile");
                self.a.bind(&l_top);
                self.expr(cond, 0)?;
                self.a.beq(EXPR_REGS[0], Reg::ZERO, &l_end);
                self.loop_labels.push((l_top.clone(), l_end.clone(), self.lock_depth));
                self.block(body)?;
                self.loop_labels.pop();
                self.a.j(&l_top);
                self.a.bind(&l_end);
            }
            Stmt::Break(pos) => {
                let (_, brk, depth) = self
                    .loop_labels
                    .last()
                    .ok_or_else(|| Self::err(*pos, "`break` outside of a loop"))?
                    .clone();
                if self.lock_depth != depth {
                    return Err(Self::err(
                        *pos,
                        "`break` would jump out of a `lock` block, skipping its release",
                    ));
                }
                self.a.j(&brk);
            }
            Stmt::Continue(pos) => {
                let (cont, _, depth) = self
                    .loop_labels
                    .last()
                    .ok_or_else(|| Self::err(*pos, "`continue` outside of a loop"))?
                    .clone();
                if self.lock_depth != depth {
                    return Err(Self::err(
                        *pos,
                        "`continue` would jump out of a `lock` block, skipping its release",
                    ));
                }
                self.a.j(&cont);
            }
            Stmt::Return(e, pos) => {
                if self.lock_depth > 0 {
                    return Err(Self::err(
                        *pos,
                        "`return` inside a `lock` block would skip its release",
                    ));
                }
                if let Some(e) = e {
                    self.expr(e, 0)?;
                    self.a.mv(Reg::A0, EXPR_REGS[0]);
                } else {
                    self.a.li(Reg::A0, 0);
                }
                let ep = self.epilogue.clone();
                self.a.j(&ep);
            }
            Stmt::Out(e) => {
                self.expr(e, 0)?;
                self.a.out(EXPR_REGS[0]);
            }
            Stmt::Halt => self.a.halt(),
            Stmt::Join => {
                let rt = self.rt;
                emit_join_spin(&mut self.a, &rt, &self.labels);
            }
            Stmt::Lock(addr, body) => {
                // Keep the locked address in a frame slot so nested
                // expressions and calls cannot clobber it.
                self.expr(addr, 0)?;
                let slot = self.next_slot;
                self.next_slot += 1;
                self.store_slot(EXPR_REGS[0], slot);
                self.a.mlock(EXPR_REGS[0]);
                self.lock_depth += 1;
                self.block(body)?;
                self.lock_depth -= 1;
                self.load_slot(SCRATCH_A, slot);
                self.a.munlock(SCRATCH_A);
            }
            Stmt::Mark(id, body) => {
                self.a.mark_start(*id);
                self.block(body)?;
                self.a.mark_end(*id);
            }
            Stmt::Coworker(name, args, pos) => {
                let label = {
                    let sig = self
                        .fns
                        .get(name)
                        .ok_or_else(|| Self::err(*pos, format!("unknown worker `{name}`")))?;
                    if sig.params != args.len() {
                        return Err(Self::err(
                            *pos,
                            format!(
                                "`{name}` takes {} argument(s), got {}",
                                sig.params,
                                args.len()
                            ),
                        ));
                    }
                    sig.label.clone()
                };
                // stage the arguments in A0..A5 so the child's register
                // copy carries them (Figure 2's pre-processed form)
                for (i, arg) in args.iter().enumerate() {
                    self.expr(arg, i)?;
                }
                for i in 0..args.len() {
                    self.a.mv(ARG_REGS[i], EXPR_REGS[i]);
                }
                let l_child = self.labels.fresh("cw_child");
                let l_after = self.labels.fresh("cw_after");
                let rt = self.rt;
                // one token for the child worker, counted before it exists
                emit_locked_add(&mut self.a, rt.tokens, 1);
                self.a.nthr(PROBE, &l_child);
                self.a.li(SCRATCH_A, -1);
                self.a.bne(PROBE, SCRATCH_A, &l_after); // granted: parent moves on
                                                        // denied (case -1): return the token, call sequentially
                emit_locked_add(&mut self.a, rt.tokens, -1);
                self.save_locals();
                self.a.call(&label);
                self.restore_locals();
                self.a.j(&l_after);
                // the divided child (case 1): new stack, run, merge, die
                self.a.bind(&l_child);
                emit_stack_alloc(&mut self.a, &rt, &self.labels);
                self.a.call(&label);
                emit_locked_add(&mut self.a, rt.tokens, -1);
                emit_stack_free(&mut self.a, &rt);
                self.a.kthr();
                self.a.bind(&l_after);
            }
            Stmt::Expr(e) => {
                self.expr(e, 0)?;
            }
        }
        Ok(())
    }

    fn function(&mut self, w: &WorkerDef) -> Result<(), LangError> {
        if w.params.len() > ARG_REGS.len() {
            return Err(Self::err(w.pos, format!("at most {} parameters", ARG_REGS.len())));
        }
        // frame: params + lets + lock slots + ra
        let lock_slots = count_locks(&w.body);
        let slots = w.params.len() + count_lets(&w.body) + lock_slots;
        self.reg_frame = slots <= LOCAL_REGS.len();
        // a register frame still needs a 16-byte frame for ra
        let frame = if self.reg_frame { 16 } else { ((slots as i64 + 1) * 8 + 15) & !15 };
        self.next_slot = w.params.len();
        self.epilogue = format!("fn_{}_epilogue", w.name);
        self.scopes = vec![HashMap::new()];
        self.loop_labels.clear();
        self.lock_depth = 0;
        for (i, p) in w.params.iter().enumerate() {
            if self.scopes[0].insert(p.clone(), i).is_some() {
                return Err(Self::err(w.pos, format!("duplicate parameter `{p}`")));
            }
            if self.globals.contains_key(p) {
                return Err(Self::err(w.pos, format!("parameter `{p}` shadows a global")));
            }
        }

        self.a.bind(format!("fn_{}", w.name));
        self.a.addi(Reg::SP, Reg::SP, -frame);
        self.a.st(Reg::RA, frame - 8, Reg::SP);
        for (i, _) in w.params.iter().enumerate() {
            if self.reg_frame {
                self.a.mv(LOCAL_REGS[i], ARG_REGS[i]);
            } else {
                self.a.st(ARG_REGS[i], Self::slot_off(i), Reg::SP);
            }
        }
        self.block(&w.body)?;
        self.a.li(Reg::A0, 0); // implicit `return 0`
        self.a.bind(self.epilogue.clone());
        self.a.ld(Reg::RA, frame - 8, Reg::SP);
        self.a.addi(Reg::SP, Reg::SP, frame);
        self.a.ret();
        debug_assert!(self.next_slot <= slots, "slot accounting");
        Ok(())
    }
}

fn count_locks(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::Lock(_, b) => 1 + count_locks(b),
            Stmt::If(_, t, e) => count_locks(t) + count_locks(e),
            Stmt::While(_, b) => count_locks(b),
            _ => 0,
        })
        .sum()
}

/// Compiles Capsule C source to a loadable CAP64 [`Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source position.
pub fn compile(src: &str) -> Result<Program, LangError> {
    compile_with(src, &Options::default())
}

/// [`compile`] with explicit [`Options`].
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(src: &str, opts: &Options) -> Result<Program, LangError> {
    let ast = parse(src)?;
    let origin = Pos { line: 1, col: 1 };

    // ---- globals ----
    let mut d = DataBuilder::new();
    let mut globals = HashMap::new();
    for g in &ast.globals {
        if globals.contains_key(&g.name) {
            return Err(LangError::new(g.pos, format!("duplicate global `{}`", g.name)));
        }
        d.label(&g.name);
        let kind = match g.len {
            None => GlobalKind::Scalar(d.word(g.init)),
            Some(n) => GlobalKind::Array(d.zeros(n * 8)),
        };
        globals.insert(g.name.clone(), kind);
    }
    let rt = init_runtime(&mut d, 0, opts.pool_slots, opts.stack_bytes);

    // ---- signatures ----
    let mut fns = HashMap::new();
    for w in &ast.workers {
        if fns.contains_key(&w.name) {
            return Err(LangError::new(w.pos, format!("duplicate worker `{}`", w.name)));
        }
        if globals.contains_key(&w.name) {
            return Err(LangError::new(
                w.pos,
                format!("worker `{}` collides with a global", w.name),
            ));
        }
        fns.insert(
            w.name.clone(),
            FnSig { params: w.params.len(), label: format!("fn_{}", w.name) },
        );
    }
    match fns.get("main") {
        Some(sig) if sig.params == 0 => {}
        Some(_) => return Err(LangError::new(origin, "`main` must take no parameters")),
        None => return Err(LangError::new(origin, "no `worker main()` defined")),
    }

    // ---- code ----
    let mut cg = Cg {
        a: Asm::new(),
        labels: Labels::new("cc"),
        rt,
        globals,
        fns,
        scopes: Vec::new(),
        next_slot: 0,
        loop_labels: Vec::new(),
        lock_depth: 0,
        reg_frame: false,
        epilogue: String::new(),
        ast: &ast,
    };
    // entry: the ancestor takes a pooled stack, runs main, halts
    emit_stack_alloc(&mut cg.a, &rt, &cg.labels);
    cg.a.call("fn_main");
    cg.a.halt();
    for w in &cg.ast.workers.to_vec() {
        cg.function(w)?;
    }

    let text =
        cg.a.assemble()
            .map_err(|e| LangError::new(origin, format!("internal assembly error: {e}")))?;
    let program = Program::new(text, d.build(), opts.heap_bytes).with_thread(ThreadSpec::at(0));
    program
        .validate()
        .map_err(|e| LangError::new(origin, format!("internal program error: {e}")))?;
    Ok(program)
}
