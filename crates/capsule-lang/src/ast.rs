//! Abstract syntax of Capsule C.

use crate::token::Pos;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And, // short-circuit
    Or,  // short-circuit
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable (parameter, local, or global scalar).
    Var(String, Pos),
    /// Global array element `name[index]`.
    Index(String, Box<Expr>, Pos),
    /// Address of a global scalar or array element: `&name` / `&name[e]`.
    AddrOf(String, Option<Box<Expr>>, Pos),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Call `f(args)`.
    Call(String, Vec<Expr>, Pos),
    /// `tid()` — the current worker id.
    Tid,
    /// `nctx()` — free hardware contexts.
    Nctx,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// Parameter/local/global scalar.
    Var(String, Pos),
    /// Global array element.
    Index(String, Box<Expr>, Pos),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — declares a local.
    Let(String, Expr, Pos),
    /// `place = expr;`
    Assign(Place, Expr),
    /// `if (cond) {..} [else {..}]`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) {..}`
    While(Expr, Vec<Stmt>),
    /// `return [expr];`
    Return(Option<Expr>, Pos),
    /// `out(expr);`
    Out(Expr),
    /// `halt;`
    Halt,
    /// `join;` — wait until all divided workers have died.
    Join,
    /// `lock (addr) {..}` — `mlock`/`munlock` around the block.
    Lock(Expr, Vec<Stmt>),
    /// `mark N {..}` — instrumentation section N around the block
    /// (`mark.start`/`mark.end`, feeding the Table 2 / Figure 8 section
    /// statistics).
    Mark(u16, Vec<Stmt>),
    /// `coworker f(args);` — probe + divide; sequential call when denied.
    Coworker(String, Vec<Expr>, Pos),
    /// `break;` — leave the innermost `while`.
    Break(Pos),
    /// `continue;` — next iteration of the innermost `while`.
    Continue(Pos),
    /// Expression statement (a call evaluated for its effects).
    Expr(Expr),
}

/// A worker (function) definition.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerDef {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition site.
    pub pos: Pos,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// `Some(n)` for an array of `n` words, `None` for a scalar.
    pub len: Option<usize>,
    /// Initial value for scalars (arrays are zeroed).
    pub init: i64,
    /// Definition site.
    pub pos: Pos,
}

/// A parsed program: globals plus workers, one of which must be `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    /// Global variables and arrays.
    pub globals: Vec<GlobalDef>,
    /// Worker definitions.
    pub workers: Vec<WorkerDef>,
}
