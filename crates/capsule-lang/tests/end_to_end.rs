//! End-to-end: Capsule C source → CAP64 → executed on the reference
//! interpreter and the cycle-level SOMT machine.

use capsule_core::config::MachineConfig;
use capsule_lang::compile;
use capsule_sim::machine::Machine;
use capsule_sim::{Interp, InterpConfig};

/// Compile and run on the interpreter; return the integer outputs.
fn run_interp(src: &str) -> Vec<i64> {
    let p = compile(src).expect("compiles");
    let out =
        Interp::new(&p, InterpConfig::default()).expect("loads").run(500_000_000).expect("halts");
    out.output.iter().filter_map(|v| v.as_int()).collect()
}

/// Compile and run on the SOMT machine; return (outputs, outcome).
fn run_somt(src: &str) -> (Vec<i64>, capsule_sim::SimOutcome) {
    let p = compile(src).expect("compiles");
    let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("loads");
    let o = m.run(10_000_000_000).expect("halts");
    (o.ints(), o)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_interp("worker main() { out(2 + 3 * 4); }"), vec![14]);
    assert_eq!(run_interp("worker main() { out((2 + 3) * 4); }"), vec![20]);
    assert_eq!(run_interp("worker main() { out(7 / 2); out(7 % 3); out(-5); }"), vec![3, 1, -5]);
    assert_eq!(run_interp("worker main() { out(1 << 10); out(-16 >> 2); }"), vec![1024, -4]);
    assert_eq!(
        run_interp("worker main() { out(12 & 10); out(12 | 3); out(12 ^ 10); }"),
        vec![8, 15, 6]
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        run_interp("worker main() { out(3 < 4); out(4 <= 4); out(5 > 4); out(3 >= 4); }"),
        vec![1, 1, 1, 0]
    );
    assert_eq!(run_interp("worker main() { out(3 == 3); out(3 != 3); }"), vec![1, 0]);
    assert_eq!(
        run_interp("worker main() { out(1 && 2); out(0 && 2); out(0 || 5); out(0 || 0); out(!3); out(!0); }"),
        vec![1, 0, 1, 0, 0, 1]
    );
}

#[test]
fn short_circuit_skips_side_effects() {
    // The right operand would trap (division by... no traps for div — use
    // an out() side effect inside a called worker instead).
    let src = r"
global hits;
worker bump() { hits = hits + 1; return 1; }
worker main() {
    let a = 0 && bump();
    let b = 1 || bump();
    out(hits);
    out(a + b);
}
";
    assert_eq!(run_interp(src), vec![0, 1]);
}

#[test]
fn control_flow() {
    let src = r"
worker main() {
    let i = 0;
    let sum = 0;
    while (i < 10) {
        if (i % 2 == 0) { sum = sum + i; } else { sum = sum - 1; }
        i = i + 1;
    }
    out(sum); // 0+2+4+6+8 - 5
}
";
    assert_eq!(run_interp(src), vec![15]);
}

#[test]
fn recursion_fibonacci() {
    let src = r"
worker fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
worker main() { out(fib(15)); }
";
    assert_eq!(run_interp(src), vec![610]);
}

#[test]
fn globals_and_arrays() {
    let src = r"
global total = 5;
global arr[16];
worker main() {
    let i = 0;
    while (i < 16) { arr[i] = i * i; i = i + 1; }
    total = total + arr[3] + arr[15];
    out(total);
}
";
    assert_eq!(run_interp(src), vec![5 + 9 + 225]);
}

#[test]
fn coworker_divide_and_conquer_sum() {
    let src = r"
global total;
global arr[512];

worker sum(lo, hi) {
    while (hi - lo > 32) {
        let mid = lo + (hi - lo) / 2;
        coworker sum(mid, hi);
        hi = mid;
    }
    let acc = 0;
    while (lo < hi) { acc = acc + arr[lo]; lo = lo + 1; }
    lock (&total) { total = total + acc; }
}

worker main() {
    let i = 0;
    while (i < 512) { arr[i] = i * 3 - 100; i = i + 1; }
    coworker sum(0, 512);
    join;
    out(total);
}
";
    let expected: i64 = (0..512).map(|i| i * 3 - 100).sum();
    // Functional check on the interpreter.
    assert_eq!(run_interp(src), vec![expected]);
    // The machine divides for real and still gets the same answer.
    let (ints, o) = run_somt(src);
    assert_eq!(ints, vec![expected]);
    assert!(o.stats.divisions_requested > 0, "coworker must probe");
    assert!(o.stats.divisions_granted() > 0, "SOMT must grant some");
}

#[test]
fn coworker_is_sequential_on_superscalar() {
    let src = r"
global total;
worker add(v) { lock (&total) { total = total + v; } }
worker main() {
    let i = 0;
    while (i < 10) { coworker add(i); i = i + 1; }
    join;
    out(total);
}
";
    let p = compile(src).expect("compiles");
    let mut m = Machine::new(MachineConfig::table1_superscalar(), &p).expect("loads");
    let o = m.run(1_000_000_000).expect("halts");
    assert_eq!(o.ints(), vec![45]);
    assert_eq!(o.stats.divisions_granted(), 0);
    assert_eq!(o.stats.divisions_denied_disabled, 10);
}

#[test]
fn tid_and_nctx_builtins() {
    assert_eq!(run_interp("worker main() { out(tid()); }"), vec![0]);
    let (ints, _) = run_somt("worker main() { out(nctx()); }");
    assert_eq!(ints, vec![7]); // 8 contexts, the ancestor holds one
}

#[test]
fn locks_serialize_coworkers() {
    let src = r"
global counter;
worker bump(n) {
    while (n > 0) {
        lock (&counter) { counter = counter + 1; }
        n = n - 1;
    }
}
worker main() {
    let k = 0;
    while (k < 6) { coworker bump(50); k = k + 1; }
    join;
    out(counter);
}
";
    let (ints, o) = run_somt(src);
    assert_eq!(ints, vec![300]);
    assert!(o.stats.lock_acquires >= 300);
}

#[test]
fn nested_calls_preserve_temporaries() {
    let src = r"
worker add(a, b) { return a + b; }
worker main() {
    // deliberately deep expression with calls at interior positions
    out(add(1, 2) * add(add(3, 4), 5) + add(6, add(7, 8)));
}
";
    assert_eq!(run_interp(src), vec![3 * 12 + 21]);
}

#[test]
fn figure2_dijkstra_in_capsule_c() {
    // The paper's running example, written in the source language: a
    // component walk over a small fixed graph with per-node locks and
    // division at the branch points. CSR graph in globals.
    let src = r"
// graph: 0->1(2), 0->2(7), 1->2(1), 1->3(6), 2->3(3), 3: none
global idx[5];
global dest[5];
global weight[5];
global dist[4];

worker walk(node, plen) {
    let dead = 0;
    lock (&dist[node]) {
        if (plen >= dist[node]) { dead = 1; }
        if (dead == 0) { dist[node] = plen; }
    }
    if (dead) { return 0; }
    let e = idx[node];
    let end = idx[node + 1];
    while (e < end - 1) {
        coworker walk(dest[e], plen + weight[e]);
        e = e + 1;
    }
    if (e < end) {
        walk(dest[e], plen + weight[e]);
    }
    return 0;
}

worker main() {
    idx[0] = 0; idx[1] = 2; idx[2] = 4; idx[3] = 5; idx[4] = 5;
    dest[0] = 1; weight[0] = 2;
    dest[1] = 2; weight[1] = 7;
    dest[2] = 2; weight[2] = 1;
    dest[3] = 3; weight[3] = 6;
    dest[4] = 3; weight[4] = 3;
    let i = 0;
    while (i < 4) { dist[i] = 1000000; i = i + 1; }
    coworker walk(0, 0);
    join;
    out(dist[0]); out(dist[1]); out(dist[2]); out(dist[3]);
}
";
    // shortest: 0 -> 0; 1 -> 2; 2 -> 3 (0,1,2); 3 -> 6 (0,1,2,3)
    assert_eq!(run_interp(src), vec![0, 2, 3, 6]);
    let (ints, _) = run_somt(src);
    assert_eq!(ints, vec![0, 2, 3, 6]);
}

#[test]
fn semantic_errors_are_positioned() {
    let e = compile("worker main() { out(x); }").unwrap_err();
    assert!(e.msg.contains("undeclared"));

    let e = compile("worker f(a) {} worker main() { f(1, 2); }").unwrap_err();
    assert!(e.msg.contains("takes 1 argument"));

    let e = compile("worker main() { g(); }").unwrap_err();
    assert!(e.msg.contains("unknown worker"));

    let e = compile("worker f() {}").unwrap_err();
    assert!(e.msg.contains("no `worker main()`"));

    let e = compile("worker main(x) {}").unwrap_err();
    assert!(e.msg.contains("no parameters"));

    let e = compile("global g; worker main() { let g = 1; }").unwrap_err();
    assert!(e.msg.contains("shadows"));

    let e = compile("worker main() { let a = 1; let a = 2; }").unwrap_err();
    assert!(e.msg.contains("already defined"));

    let e = compile("global a; global a; worker main() {}").unwrap_err();
    assert!(e.msg.contains("duplicate global"));

    let e = compile("worker main() {} worker main() {}").unwrap_err();
    assert!(e.msg.contains("duplicate worker"));

    let e = compile("global arr[4]; worker main() { out(arr); }").unwrap_err();
    assert!(e.msg.contains("needs an index"));

    let e = compile("global s; worker main() { out(s[0]); }").unwrap_err();
    assert!(e.msg.contains("scalar"));

    let e = compile("worker f(a,b,c,d,e,f,g) {} worker main() {}").unwrap_err();
    assert!(e.msg.contains("at most 6"));
}

#[test]
fn block_scoping_works() {
    let src = r"
worker main() {
    let x = 1;
    if (1) {
        let y = 10;
        x = x + y;
    }
    if (1) {
        let y = 100; // distinct slot, scoped
        x = x + y;
    }
    out(x);
}
";
    assert_eq!(run_interp(src), vec![111]);
}

#[test]
fn early_return_restores_stack() {
    let src = r"
worker pick(n) {
    if (n > 5) { return 100; }
    return n;
}
worker main() {
    out(pick(3) + pick(9));
}
";
    assert_eq!(run_interp(src), vec![103]);
}

#[test]
fn mark_sections_feed_statistics() {
    let src = r"
worker main() {
    let i = 0;
    mark 3 {
        while (i < 200) { i = i + 1; }
    }
    out(i);
}
";
    let p = compile(src).expect("compiles");
    let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("loads");
    let o = m.run(10_000_000).expect("halts");
    assert_eq!(o.ints(), vec![200]);
    assert!(o.sections.section_cycles(3) > 0);
    assert_eq!(o.sections.section_entries(3), 1);
}

#[test]
fn nqueens_counts_solutions() {
    // The repository's showcase program (examples/programs/nqueens.cap),
    // at sizes with well-known solution counts.
    let template = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/programs/nqueens.cap"
    ))
    .expect("nqueens.cap exists");
    for (n, expected) in [(6i64, 4i64), (8, 92)] {
        let src = template.replace("global n = 10;", &format!("global n = {n};"));
        assert_eq!(run_interp(&src), vec![expected], "N={n}");
        let (ints, o) = run_somt(&src);
        assert_eq!(ints, vec![expected], "N={n} on SOMT");
        if n == 8 {
            assert!(o.stats.divisions_granted() > 0, "the search must divide");
        }
    }
}

#[test]
fn break_and_continue() {
    let src = r"
worker main() {
    let i = 0;
    let sum = 0;
    while (1) {
        i = i + 1;
        if (i > 20) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // odd numbers 1..19
    }
    out(sum);
}
";
    assert_eq!(run_interp(src), vec![100]);

    // nested: break leaves only the inner loop
    let src = r"
worker main() {
    let total = 0;
    let i = 0;
    while (i < 3) {
        let j = 0;
        while (1) {
            if (j == 4) { break; }
            total = total + 1;
            j = j + 1;
        }
        i = i + 1;
    }
    out(total);
}
";
    assert_eq!(run_interp(src), vec![12]);

    let e = capsule_lang::compile("worker main() { break; }").unwrap_err();
    assert!(e.msg.contains("outside of a loop"));
    let e = capsule_lang::compile("worker main() { continue; }").unwrap_err();
    assert!(e.msg.contains("outside of a loop"));
}

#[test]
fn control_flow_cannot_skip_lock_releases() {
    use capsule_lang::compile;
    let e = compile("global g; worker f() { lock (&g) { return 1; } } worker main() { f(); }")
        .unwrap_err();
    assert!(e.msg.contains("skip its release"), "{e}");

    let e = compile("global g; worker main() { while (1) { lock (&g) { break; } } }").unwrap_err();
    assert!(e.msg.contains("skipping its release"), "{e}");

    let e =
        compile("global g; worker main() { while (1) { lock (&g) { continue; } } }").unwrap_err();
    assert!(e.msg.contains("skipping its release"), "{e}");

    // Loops fully inside the lock are fine.
    let ok = compile(
        "global g; worker main() { lock (&g) { let i = 0; while (i < 3) { if (i == 1) { break; } i = i + 1; } } }",
    );
    assert!(ok.is_ok(), "{ok:?}");
}
