//! Robustness: the compiler must never panic on arbitrary input — it
//! either compiles or returns a positioned error.
//!
//! Inputs are generated from a fixed-seed [`capsule_core::rng`] stream,
//! so the fuzzing is deterministic and hermetic. Build with `--features
//! props` for a much larger sweep.

use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_lang::compile;

fn cases(default: usize) -> usize {
    if cfg!(feature = "props") {
        default * 20
    } else {
        default
    }
}

/// A random string over the printable-ASCII-plus-newline alphabet.
fn printable_soup(rng: &mut impl Rng, max_len: usize) -> String {
    let len = rng.usize_below(max_len + 1);
    (0..len)
        .map(|_| {
            // ' '..='~' plus '\n'
            match rng.u64_below(96) {
                95 => '\n',
                c => (b' ' + c as u8) as char,
            }
        })
        .collect()
}

/// Arbitrary byte soup (printable-ish) never panics the pipeline.
#[test]
fn arbitrary_text_never_panics() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x10b_0001);
    for _ in 0..cases(256) {
        let src = printable_soup(&mut rng, 200);
        let _ = compile(&src);
    }
}

/// Structured-looking but randomly mangled programs never panic.
#[test]
fn mangled_programs_never_panic() {
    const KEYWORDS: [&str; 11] = [
        "worker", "global", "let", "if", "while", "coworker", "lock", "join", "out", "mark",
        "return",
    ];
    const JUNK: &[u8] = b"(){};=<>+*,&|![]-";
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x10b_0002);
    for _ in 0..cases(256) {
        let kw = KEYWORDS[rng.usize_below(KEYWORDS.len())];
        let ident: String =
            (0..rng.usize_below(8) + 1).map(|_| (b'a' + rng.u64_below(26) as u8) as char).collect();
        let num = rng.next_u64() as i64;
        let junk: String =
            (0..rng.usize_below(41)).map(|_| JUNK[rng.usize_below(JUNK.len())] as char).collect();
        let src = format!("worker main() {{ {kw} {ident} {num} {junk} }}");
        let _ = compile(&src);
    }
}

/// Deeply nested expressions fail gracefully (depth error), never
/// overflow the stack or panic.
#[test]
fn deep_nesting_is_rejected_gracefully() {
    for depth in 1usize..60 {
        let open = "(1 + ".repeat(depth);
        let close = ")".repeat(depth);
        let src = format!("worker main() {{ out({open}1{close}); }}");
        let _ = compile(&src);
    }
}

#[test]
fn error_positions_point_into_the_source() {
    let cases = [
        "worker main() { @ }",
        "worker main() { let 5 = 3; }",
        "global a[0]; worker main() {}",
        "worker main() { out(1 + ); }",
        "worker main() { if 1 { } }",
        "worker main() { mark x { } }",
    ];
    for src in cases {
        let e = compile(src).expect_err(src);
        assert!(e.pos.line >= 1, "{src}: {e}");
        assert!(!e.msg.is_empty(), "{src}");
    }
}
