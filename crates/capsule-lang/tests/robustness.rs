//! Robustness: the compiler must never panic on arbitrary input — it
//! either compiles or returns a positioned error.

use capsule_lang::compile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (printable-ish) never panics the pipeline.
    #[test]
    fn arbitrary_text_never_panics(src in "[ -~\n]{0,200}") {
        let _ = compile(&src);
    }

    /// Structured-looking but randomly mangled programs never panic.
    #[test]
    fn mangled_programs_never_panic(
        kw in prop::sample::select(vec![
            "worker", "global", "let", "if", "while", "coworker", "lock",
            "join", "out", "mark", "return",
        ]),
        ident in "[a-z]{1,8}",
        num in any::<i64>(),
        junk in "[(){};=<>+*,&|!\\[\\]-]{0,40}",
    ) {
        let src = format!("worker main() {{ {kw} {ident} {num} {junk} }}");
        let _ = compile(&src);
    }

    /// Deeply nested expressions fail gracefully (depth error), never
    /// overflow the stack or panic.
    #[test]
    fn deep_nesting_is_rejected_gracefully(depth in 1usize..60) {
        let open = "(1 + ".repeat(depth);
        let close = ")".repeat(depth);
        let src = format!("worker main() {{ out({open}1{close}); }}");
        let _ = compile(&src);
    }
}

#[test]
fn error_positions_point_into_the_source() {
    let cases = [
        "worker main() { @ }",
        "worker main() { let 5 = 3; }",
        "global a[0]; worker main() {}",
        "worker main() { out(1 + ); }",
        "worker main() { if 1 { } }",
        "worker main() { mark x { } }",
    ];
    for src in cases {
        let e = compile(src).expect_err(src);
        assert!(e.pos.line >= 1, "{src}: {e}");
        assert!(!e.msg.is_empty(), "{src}");
    }
}
