//! Differential property test for the compiler: random expression trees
//! are rendered to Capsule C, compiled, executed on the reference
//! interpreter, and compared against a host-side evaluator that uses the
//! ISA's own operator semantics (`AluOp::apply`).

use capsule_isa::instr::AluOp;
use capsule_lang::compile;
use capsule_sim::{Interp, InterpConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
}

const OPS: [&str; 13] =
    ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "<", "==", "!="];

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = (-1000i64..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (prop::sample::select(OPS.to_vec()), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| E::Bin(op, Box::new(l), Box::new(r))),
            inner.prop_map(|e| E::Neg(Box::new(e))),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) if *v < 0 => format!("(0 - {})", -v),
        E::Lit(v) => format!("{v}"),
        E::Bin(op, l, r) => format!("({} {op} {})", render(l), render(r)),
        E::Neg(i) => format!("(-{})", render(i)),
    }
}

fn eval(e: &E) -> i64 {
    match e {
        E::Lit(v) => *v,
        E::Neg(i) => 0i64.wrapping_sub(eval(i)),
        E::Bin(op, l, r) => {
            let (a, b) = (eval(l), eval(r));
            match *op {
                "+" => AluOp::Add.apply(a, b),
                "-" => AluOp::Sub.apply(a, b),
                "*" => AluOp::Mul.apply(a, b),
                "/" => AluOp::Div.apply(a, b),
                "%" => AluOp::Rem.apply(a, b),
                "<<" => AluOp::Sll.apply(a, b),
                ">>" => AluOp::Sra.apply(a, b),
                "&" => AluOp::And.apply(a, b),
                "|" => AluOp::Or.apply(a, b),
                "^" => AluOp::Xor.apply(a, b),
                "<" => AluOp::Slt.apply(a, b),
                "==" => (a == b) as i64,
                "!=" => (a != b) as i64,
                _ => unreachable!(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_expressions_match_host_semantics(e in expr_strategy()) {
        let src = format!("worker main() {{ out({}); }}", render(&e));
        let expected = eval(&e);
        let p = compile(&src).expect("generated source must compile");
        let out = Interp::new(&p, InterpConfig::default())
            .expect("loads")
            .run(10_000_000)
            .expect("halts");
        let got: Vec<i64> = out.output.iter().filter_map(|v| v.as_int()).collect();
        prop_assert_eq!(got, vec![expected], "source: {}", src);
    }
}
