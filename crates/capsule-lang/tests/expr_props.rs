//! Differential property test for the compiler: random expression trees
//! are rendered to Capsule C, compiled, executed on the reference
//! interpreter, and compared against a host-side evaluator that uses the
//! ISA's own operator semantics (`AluOp::apply`).
//!
//! Trees are generated from a fixed-seed [`capsule_core::rng`] stream, so
//! the suite is deterministic and hermetic. Build with `--features props`
//! for a much larger sweep.

use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_isa::instr::AluOp;
use capsule_lang::compile;
use capsule_sim::{Interp, InterpConfig};

#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
}

const OPS: [&str; 13] = ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "<", "==", "!="];

/// Random expression tree of bounded depth; at depth 0 only literals.
fn random_expr(rng: &mut impl Rng, depth: usize) -> E {
    if depth == 0 || rng.chance(0.3) {
        return E::Lit(rng.i64_range(-1000, 1000));
    }
    if rng.chance(0.2) {
        E::Neg(Box::new(random_expr(rng, depth - 1)))
    } else {
        let op = OPS[rng.usize_below(OPS.len())];
        E::Bin(op, Box::new(random_expr(rng, depth - 1)), Box::new(random_expr(rng, depth - 1)))
    }
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) if *v < 0 => format!("(0 - {})", -v),
        E::Lit(v) => format!("{v}"),
        E::Bin(op, l, r) => format!("({} {op} {})", render(l), render(r)),
        E::Neg(i) => format!("(-{})", render(i)),
    }
}

fn eval(e: &E) -> i64 {
    match e {
        E::Lit(v) => *v,
        E::Neg(i) => 0i64.wrapping_sub(eval(i)),
        E::Bin(op, l, r) => {
            let (a, b) = (eval(l), eval(r));
            match *op {
                "+" => AluOp::Add.apply(a, b),
                "-" => AluOp::Sub.apply(a, b),
                "*" => AluOp::Mul.apply(a, b),
                "/" => AluOp::Div.apply(a, b),
                "%" => AluOp::Rem.apply(a, b),
                "<<" => AluOp::Sll.apply(a, b),
                ">>" => AluOp::Sra.apply(a, b),
                "&" => AluOp::And.apply(a, b),
                "|" => AluOp::Or.apply(a, b),
                "^" => AluOp::Xor.apply(a, b),
                "<" => AluOp::Slt.apply(a, b),
                "==" => (a == b) as i64,
                "!=" => (a != b) as i64,
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn compiled_expressions_match_host_semantics() {
    let total = if cfg!(feature = "props") { 1280 } else { 64 };
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe4b_0001);
    for case in 0..total {
        let e = random_expr(&mut rng, 4);
        let src = format!("worker main() {{ out({}); }}", render(&e));
        let expected = eval(&e);
        let p = compile(&src).expect("generated source must compile");
        let out = Interp::new(&p, InterpConfig::default())
            .expect("loads")
            .run(10_000_000)
            .expect("halts");
        let got: Vec<i64> = out.output.iter().filter_map(|v| v.as_int()).collect();
        assert_eq!(got, vec![expected], "case {case}, source: {src}");
    }
}
