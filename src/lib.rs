//! CAPSULE — a reproduction of *"CAPSULE: Hardware-Assisted Parallel
//! Execution of Component-Based Programs"* (Palatin, Lhuillier, Temam,
//! MICRO-39, 2006).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`model`] (`capsule-core`): division policy, machine configuration
//!   (Table 1), statistics;
//! - [`isa`] (`capsule-isa`): the CAP64 instruction set with the
//!   `nthr`/`kthr`/`mlock`/`munlock` extensions, builder DSL, assembler;
//! - [`lang`] (`capsule-lang`): the Capsule C source language — `worker`/
//!   `coworker` extensions compiled to CAP64, the paper's §3.2 toolchain;
//! - [`mem`] (`capsule-mem`): the cache hierarchy;
//! - [`sim`] (`capsule-sim`): the cycle-level SOMT/SMT/superscalar
//!   machine and the functional reference interpreter;
//! - [`workloads`] (`capsule-workloads`): the paper's benchmark suite
//!   (Dijkstra, QuickSort, LZW, Perceptron, and the mcf/vpr/bzip2/crafty
//!   SPEC analogs);
//! - [`rt`] (`capsule-rt`): the conditional-division policy on native
//!   threads.
//!
//! See `examples/` for runnable entry points and `capsule-bench` for the
//! binaries that regenerate every figure and table of the paper.
//!
//! # Quickstart
//!
//! ```
//! use capsule::model::config::MachineConfig;
//! use capsule::sim::machine::Machine;
//! use capsule::workloads::dijkstra::Dijkstra;
//! use capsule::workloads::{Variant, Workload};
//!
//! let w = Dijkstra::figure3(1, 50);
//! let program = w.program(Variant::Component);
//! let mut m = Machine::new(MachineConfig::table1_somt(), &program).unwrap();
//! let outcome = m.run(100_000_000).unwrap();
//! w.check(&outcome.output).unwrap();
//! println!("{} cycles, {} divisions", outcome.cycles(), outcome.stats.divisions_granted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use capsule_core as model;
pub use capsule_isa as isa;
pub use capsule_lang as lang;
pub use capsule_mem as mem;
pub use capsule_rt as rt;
pub use capsule_sim as sim;
pub use capsule_workloads as workloads;
