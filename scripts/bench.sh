#!/usr/bin/env sh
# Simulator-throughput benchmark: builds the workspace and runs the
# catalog through capsule-bench's bench_sim mode, recording host
# wall-clock and simulated-cycles-per-host-second per catalog entry in
# BENCH_sim.json (schema capsule-bench-sim/1). See docs/PERF.md for how
# to read the numbers and how to compare against a saved baseline.
#
# Usage:
#   scripts/bench.sh                         # quick scale -> BENCH_sim.json
#   scripts/bench.sh --scale smoke           # fast sanity run
#   scripts/bench.sh --baseline old.json     # adds per-entry speedups
#   scripts/bench.sh --compare old.json      # throughput gate (exit 1 on
#                                            # regression beyond --noise)
# All arguments are passed through to bench_sim.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
exec target/release/bench_sim "$@"
