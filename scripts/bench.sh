#!/usr/bin/env sh
# Tracked benchmarks: builds the workspace and runs one of the two bench
# binaries.
#
# Default (no subcommand): capsule-bench's bench_sim mode, recording host
# wall-clock and simulated-cycles-per-host-second per catalog entry in
# BENCH_sim.json (schema capsule-bench-sim/1).
#
# `serve` subcommand: capsule-serve's bench_serve mode, recording
# throughput, latency percentiles, queue-full rate and per-job protocol
# overhead for v1 and v2 legs at fixed offered loads in BENCH_serve.json
# (schema capsule-bench-serve/1).
#
# See docs/PERF.md for how to read the numbers and how to compare
# against a saved baseline.
#
# Usage:
#   scripts/bench.sh                         # quick scale -> BENCH_sim.json
#   scripts/bench.sh --scale smoke           # fast sanity run
#   scripts/bench.sh --baseline old.json     # adds per-entry speedups
#   scripts/bench.sh --compare old.json      # throughput gate (exit 1 on
#                                            # regression beyond --noise)
#   scripts/bench.sh serve                   # server legs -> BENCH_serve.json
#   scripts/bench.sh serve --compare old.json
# Remaining arguments are passed through to the selected binary.
set -eu

cd "$(dirname "$0")/.."

bin=bench_sim
if [ "${1:-}" = "serve" ]; then
    bin=bench_serve
    shift
fi

cargo build --release --offline --workspace
exec "target/release/$bin" "$@"
