#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test and lint with no
# network or registry access (the tree has zero external dependencies).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> bench_sim determinism smoke"
# The simulator's fast path (event-driven wakeup, idle fast-forward)
# must stay bit-deterministic: two smoke-scale runs have to produce
# byte-identical simulated numbers and byte-identical per-entry
# reports. --deterministic omits host-timing fields; the --baseline
# re-read doubles as the "report parses" check (it exits non-zero on
# malformed JSON).
bench_dir="$(mktemp -d)"
target/release/bench_sim --scale smoke --deterministic \
    --out "$bench_dir/a.json" --reports "$bench_dir/reports_a" >/dev/null
target/release/bench_sim --scale smoke --deterministic \
    --out "$bench_dir/b.json" --reports "$bench_dir/reports_b" \
    --baseline "$bench_dir/a.json" >/dev/null
cmp "$bench_dir/a.json" "$bench_dir/b.json"
diff -r "$bench_dir/reports_a" "$bench_dir/reports_b"

echo "==> bench_sim --compare gate smoke"
# The throughput-regression gate must be deterministic in both
# directions: against a synthetic near-zero baseline every entry is a
# speedup (exit 0); against an unreachably fast baseline every entry is
# a regression (exit nonzero). Real thresholds live in docs/PERF.md;
# this only pins the gate's mechanics, not the host's speed.
printf '%s' '{"schema":"capsule-bench-sim/1","entries":[{"entry":"toolchain_overhead","sim_cycles_per_sec":0.001}]}' \
    >"$bench_dir/base_slow.json"
printf '%s' '{"schema":"capsule-bench-sim/1","entries":[{"entry":"toolchain_overhead","sim_cycles_per_sec":1e15}]}' \
    >"$bench_dir/base_fast.json"
target/release/bench_sim --scale smoke --entries toolchain_overhead \
    --out "$bench_dir/cmp.json" --compare "$bench_dir/base_slow.json" >/dev/null
if target/release/bench_sim --scale smoke --entries toolchain_overhead \
    --out "$bench_dir/cmp.json" --compare "$bench_dir/base_fast.json" >/dev/null; then
    echo "bench_sim --compare failed to flag a regression" >&2
    exit 1
fi
rm -rf "$bench_dir"

echo "==> bench_serve determinism + compare gate smoke"
# The server benchmark must be doubly deterministic: two fixed-seed
# --deterministic runs byte-identical, and each run self-checks that
# the v1 and v2 legs of every load produce the same per-job report
# digest (exit nonzero on a parity break). The throughput gate mirrors
# bench_sim's: a near-zero synthetic baseline passes, an unreachably
# fast one must fail — write-the-file-then-gate semantics included.
sbench_dir="$(mktemp -d)"
target/release/bench_serve --loads 30 --jobs 12 --deterministic \
    --out "$sbench_dir/a.json" >/dev/null
target/release/bench_serve --loads 30 --jobs 12 --deterministic \
    --out "$sbench_dir/b.json" >/dev/null
cmp "$sbench_dir/a.json" "$sbench_dir/b.json"
printf '%s' '{"schema":"capsule-bench-serve/1","entries":[{"entry":"load30_v1","throughput_rps":0.001},{"entry":"load30_v2","throughput_rps":0.001}]}' \
    >"$sbench_dir/base_slow.json"
printf '%s' '{"schema":"capsule-bench-serve/1","entries":[{"entry":"load30_v1","throughput_rps":1e15}]}' \
    >"$sbench_dir/base_fast.json"
target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 \
    --out "$sbench_dir/cmp.json" --compare "$sbench_dir/base_slow.json" >/dev/null
if target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 \
    --out "$sbench_dir/cmp.json" --compare "$sbench_dir/base_fast.json" >/dev/null; then
    echo "bench_serve --compare failed to flag a regression" >&2
    exit 1
fi
# The flight recorder must be invisible to the benchmark's bytes and
# cheap enough to leave on: a --flight-off deterministic run is
# byte-identical to the recorder-on run above, and a timed recorder-on
# run must pass the throughput gate against a recorder-off baseline
# within the default noise fraction (docs/OBSERVABILITY.md).
target/release/bench_serve --loads 30 --jobs 12 --deterministic --flight-off \
    --out "$sbench_dir/c.json" >/dev/null
cmp "$sbench_dir/a.json" "$sbench_dir/c.json"
target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 --flight-off \
    --out "$sbench_dir/flight_off.json" >/dev/null
target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 \
    --out "$sbench_dir/flight_on.json" \
    --compare "$sbench_dir/flight_off.json" --noise 0.15 >/dev/null
rm -rf "$sbench_dir"
echo "bench_serve: deterministic runs byte-identical, compare gate passes and fails correctly, flight recorder within noise"

echo "==> capsule-fuzz differential smoke"
# Fixed-seed, fixed-count sweep over the reduced config matrix: every
# generated program must produce identical architectural results across
# machine shapes, division policies, checkpoint/resume and the decode
# cache (docs/FUZZ.md). On divergence the fuzzer exits non-zero after
# writing a replayable artifact — surface its path loudly. Then replay
# the checked-in minimized corpus, which must stay clean.
fuzz_dir="$(mktemp -d)"
if ! target/release/capsule-fuzz --seed 1 --count 200 --matrix reduced --out "$fuzz_dir"; then
    echo "capsule-fuzz sweep diverged; replayable artifacts in $fuzz_dir:" >&2
    ls "$fuzz_dir" >&2
    exit 1
fi
target/release/capsule-fuzz --replay crates/capsule-fuzz/corpus
rm -rf "$fuzz_dir"

echo "==> capsule-serve smoke test"
# Start the job server on an ephemeral port, drive it with the
# deterministic load generator (which also asserts that a repeated
# request is a byte-identical cache hit), then shut it down cleanly
# over the wire. The server checkpoints (docs/CHECKPOINT.md) and the
# load generator preempts-and-resumes a seeded subset of jobs
# (--preempt-rate), so the swap path runs under mixed traffic too.
serve_log="$(mktemp)"
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "capsule-serve did not come up:" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/release/capsule-loadgen "$addr" --jobs 8 --threads 3 --preempt-rate 3
# Differential leg: seeded fuzz-generated programs as server jobs, each
# report compared byte-for-byte against an in-process run of the same
# scenario set (docs/FUZZ.md) — the server path (cache keys, overrides,
# checkpointed runs) must be invisible to results.
target/release/capsule-loadgen "$addr" --fuzz 4
# Open-loop determinism: two fixed-seed Poisson/Zipf replays per
# protocol against the live server must print byte-identical summaries
# (the digest covers every report byte of every job), and the v1 and
# v2 digests must agree — the framed protocol cannot fork a result.
# Jobs fit the workers+queue capacity so nothing races backpressure.
ol_v1a="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
ol_v1b="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
ol_v2a="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic --proto v2)"
ol_v2b="$(CAPSULE_LOADGEN_PROTO=v2 target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
if [ "$ol_v1a" != "$ol_v1b" ] || [ "$ol_v2a" != "$ol_v2b" ]; then
    echo "open-loop replay is not deterministic:" >&2
    printf '%s\n%s\n%s\n%s\n' "$ol_v1a" "$ol_v1b" "$ol_v2a" "$ol_v2b" >&2
    exit 1
fi
d_v1="$(printf '%s' "$ol_v1a" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')"
d_v2="$(printf '%s' "$ol_v2a" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')"
if [ -z "$d_v1" ] || [ "$d_v1" != "$d_v2" ]; then
    echo "v1/v2 open-loop digests disagree: '$d_v1' vs '$d_v2'" >&2
    exit 1
fi
# Protocol parity over one-shot clients: the same (warmed) job asked
# over v1 and v2 must answer with byte-identical responses.
target/release/capsule-client "$addr" run table3_divisions smoke --compact >/dev/null
pv1="$(target/release/capsule-client "$addr" --proto v1 run table3_divisions smoke --compact)"
pv2="$(target/release/capsule-client "$addr" --proto v2 run table3_divisions smoke --compact)"
if [ "$pv1" != "$pv2" ]; then
    echo "v1 and v2 client answers diverged:" >&2
    printf '%s\n%s\n' "$pv1" "$pv2" >&2
    exit 1
fi
echo "open-loop determinism + v1/v2 parity: ok (digest $d_v1)"
target/release/capsule-client "$addr" shutdown --compact
wait "$serve_pid"
rm -f "$serve_log"

echo "==> capsule-fleet smoke test"
# Two backends behind one coordinator, all on ephemeral loopback ports.
# The load generator's --fleet mode sweeps the full catalog (one
# smoke-scale job per entry) through the coordinator, then --parity
# replays every scenario against backend 1 directly and requires each
# report to be byte-identical — the fleet must be invisible to clients.
wait_addr() {
    _log="$1"
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr="$(sed -n 's/^listening on //p' "$_log")"
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "server did not come up:" >&2
        cat "$_log" >&2
        exit 1
    fi
    printf '%s' "$_addr"
}
b1_log="$(mktemp)"
b2_log="$(mktemp)"
fleet_log="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$b1_log" 2>&1 &
b1_pid=$!
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$b2_log" 2>&1 &
b2_pid=$!
b1_addr="$(wait_addr "$b1_log")"
b2_addr="$(wait_addr "$b2_log")"
target/release/capsule-fleet --addr 127.0.0.1:0 \
    --backend "$b1_addr" --backend "$b2_addr" --probe-ms 100 >"$fleet_log" 2>&1 &
fleet_pid=$!
fleet_addr="$(wait_addr "$fleet_log")"
target/release/capsule-loadgen "$fleet_addr" --fleet --threads 3 --parity "$b1_addr"
# Fleet stats must show both backends reporting into the aggregate.
reporting="$(target/release/capsule-client "$fleet_addr" stats --compact \
    | sed -n 's/.*"backends_reporting":\([0-9]*\).*/\1/p')"
if [ "$reporting" != "2" ]; then
    echo "expected 2 backends reporting, got '$reporting'" >&2
    exit 1
fi
echo "==> observability smoke test"
# A traced job through the fleet must be reconstructable end to end:
# the trace op's tree has to contain both the coordinator's dispatch
# span and the backend's execution span (grafted at query time). The
# budget is non-default so the job's canonical form misses the caches
# the sweep above populated and the backend really executes. Then the
# metrics exposition must be scrape-stable: two back-to-back scrapes
# byte-identical (docs/OBSERVABILITY.md).
target/release/capsule-client "$fleet_addr" --compact \
    '{"op":"run","scenario":"table1_config","scale":"smoke","budget":190000000000,"trace_id":"ci-t1"}' \
    >/dev/null
trace_out="$(target/release/capsule-client "$fleet_addr" trace ci-t1 --compact)"
for span in '"name":"fleet.dispatch"' '"name":"serve.execute"'; do
    case "$trace_out" in
        *"$span"*) ;;
        *)
            echo "trace ci-t1 is missing $span:" >&2
            echo "$trace_out" >&2
            exit 1
            ;;
    esac
done
m1="$(target/release/capsule-client "$fleet_addr" metrics --compact)"
m2="$(target/release/capsule-client "$fleet_addr" metrics --compact)"
if [ "$m1" != "$m2" ]; then
    echo "metrics exposition is not scrape-stable:" >&2
    printf '%s\n%s\n' "$m1" "$m2" >&2
    exit 1
fi
target/release/capsule-client "$fleet_addr" shutdown --compact
target/release/capsule-client "$b1_addr" shutdown --compact
target/release/capsule-client "$b2_addr" shutdown --compact
wait "$fleet_pid" "$b1_pid" "$b2_pid"
rm -f "$b1_log" "$b2_log" "$fleet_log"

echo "==> fleet observability soak"
# The three observability tiers, end to end, with no timing races
# (docs/OBSERVABILITY.md): a huge --probe-ms means the prober runs its
# immediate startup round and then never again, so a killed backend is
# discovered by a live dispatch fault — a guaranteed retry event in the
# flight ring. The soak pins: (1) tail sampling drops the first fast
# anonymous job's trace and keeps the forced-slow one, (2) killing a
# backend and replaying the exact request it served produces a retry
# onto the survivor, (3) capsule-top --once ranks the survivor first
# and shows the victim down, (4) the dump op carries the retry and
# backend-death events.
o1_log="$(mktemp)"
o2_log="$(mktemp)"
ofleet_log="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$o1_log" 2>&1 &
o1_pid=$!
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$o2_log" 2>&1 &
o2_pid=$!
o1_addr="$(wait_addr "$o1_log")"
o2_addr="$(wait_addr "$o2_log")"
target/release/capsule-fleet --addr 127.0.0.1:0 \
    --backend "$o1_addr" --backend "$o2_addr" \
    --probe-ms 600000 --backoff-ms 10 >"$ofleet_log" 2>&1 &
ofleet_pid=$!
ofleet_addr="$(wait_addr "$ofleet_log")"
alive=""
i=0
while [ $i -lt 100 ]; do
    alive="$(target/release/capsule-client "$ofleet_addr" stats --compact \
        | sed -n 's/.*"backends_alive":\([0-9]*\).*/\1/p')"
    [ "$alive" = "2" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ "$alive" != "2" ]; then
    echo "startup probe round never marked both backends alive (alive='$alive')" >&2
    exit 1
fi
# Fast job 1 is the fleet's first tail sample: anonymous and quick,
# with no rolling p99 yet to beat, its trace must be dropped.
f1_out="$(target/release/capsule-client "$ofleet_addr" --compact \
    '{"op":"run","scenario":"toolchain_overhead","scale":"smoke","budget":191000000000}')"
f1_key="$(printf '%s' "$f1_out" | sed -n 's/.*"cache_key":"\([0-9a-f]*\)".*/\1/p')"
if [ -z "$f1_key" ]; then
    echo "fast job 1 returned no cache_key: $f1_out" >&2
    exit 1
fi
# Fast job 2's response names the backend rendezvous picked for it.
# Kill that backend and replay the byte-identical request: the same
# canonical form prefers the same (now dead, still unprobed) backend,
# so the dispatch must fault, record a retry, and land on the survivor.
f2_line='{"op":"run","scenario":"toolchain_overhead","scale":"smoke","budget":192000000000}'
f2_out="$(target/release/capsule-client "$ofleet_addr" --compact "$f2_line")"
ovictim="$(printf '%s' "$f2_out" | sed -n 's/.*"backend":"\(b[01]\)".*/\1/p')"
if [ "$ovictim" = "b0" ]; then
    ovictim_pid=$o1_pid
    osurv_name="b1"
    osurv_addr="$o2_addr"
    osurv_pid=$o2_pid
elif [ "$ovictim" = "b1" ]; then
    ovictim_pid=$o2_pid
    osurv_name="b0"
    osurv_addr="$o1_addr"
    osurv_pid=$o1_pid
else
    echo "fast job 2 names no backend: $f2_out" >&2
    exit 1
fi
kill -9 "$ovictim_pid" 2>/dev/null || true
retry_out="$(target/release/capsule-client "$ofleet_addr" --compact "$f2_line")"
oattempts="$(printf '%s' "$retry_out" | sed -n 's/.*"attempts":\([0-9]*\).*/\1/p')"
if [ "${oattempts:-0}" -lt 2 ]; then
    echo "replay onto the killed backend did not retry (attempts='$oattempts'): $retry_out" >&2
    exit 1
fi
if ! printf '%s' "$retry_out" | grep -qF "\"backend\":\"$osurv_name\""; then
    echo "replayed job did not land on survivor $osurv_name: $retry_out" >&2
    exit 1
fi
# Forced-slow job: a full-scale run dwarfs every smoke sample above, so
# it finishes far beyond the rolling p99 and its trace must be kept.
slow_out="$(target/release/capsule-client "$ofleet_addr" --compact \
    '{"op":"run","scenario":"fig6_division_tree","scale":"full"}')"
slow_key="$(printf '%s' "$slow_out" | sed -n 's/.*"cache_key":"\([0-9a-f]*\)".*/\1/p')"
if [ -z "$slow_key" ]; then
    echo "slow job returned no cache_key: $slow_out" >&2
    exit 1
fi
# capsule-top --once must rank the survivor first and show the victim
# down (table columns: RANK NAME ADDR STATE ...).
top_out="$(target/release/capsule-top --once "$ofleet_addr")"
rank0="$(printf '%s\n' "$top_out" | awk '$1 == "0" { print $2 }')"
victim_state="$(printf '%s\n' "$top_out" | awk '$1 == "1" { print $4 }')"
if [ "$rank0" != "$osurv_name" ] || [ "$victim_state" != "down" ]; then
    echo "capsule-top ranking is wrong (rank0='$rank0' expected '$osurv_name', victim state='$victim_state'):" >&2
    printf '%s\n' "$top_out" >&2
    exit 1
fi
# The dump artifact must carry the dispatch-fault story in its flight
# ring: the retry leg and the backend going down.
dump_out="$(target/release/capsule-client "$ofleet_addr" dump --compact)"
for ev in '"kind":"retry"' '"kind":"backend-down"' '"schema":"capsule-dump/1"'; do
    case "$dump_out" in
        *"$ev"*) ;;
        *)
            echo "dump is missing $ev" >&2
            exit 1
            ;;
    esac
done
# Tail retention: the slow job's distributed tree is queryable by its
# cache key; the first fast job's was dropped.
oslow_trace="$(target/release/capsule-client "$ofleet_addr" trace "$slow_key" --compact)"
for span in '"name":"fleet.dispatch"' '"name":"serve.execute"'; do
    case "$oslow_trace" in
        *"$span"*) ;;
        *)
            echo "slow job's trace is missing $span:" >&2
            echo "$oslow_trace" >&2
            exit 1
            ;;
    esac
done
if target/release/capsule-client "$ofleet_addr" trace "$f1_key" --compact >/dev/null 2>&1; then
    echo "fast job 1's anonymous trace should have been tail-dropped" >&2
    exit 1
fi
echo "observability soak: survivor ranked first, retry dumped, tail sampling kept slow/dropped fast"
target/release/capsule-client "$ofleet_addr" shutdown --compact
target/release/capsule-client "$osurv_addr" shutdown --compact
wait "$ofleet_pid" "$osurv_pid" 2>/dev/null || true
wait "$ovictim_pid" 2>/dev/null || true
rm -f "$o1_log" "$o2_log" "$ofleet_log"

echo "==> checkpoint migration smoke test"
# A preempted job must migrate, not restart (docs/CHECKPOINT.md): two
# checkpointing backends behind a coordinator, preempt a long job
# mid-run, kill the backend it was parked on, and the fleet must resume
# it on the survivor from the carried checkpoint — with the final
# report byte-identical to a direct uninterrupted run. The generous
# --backoff-ms keeps the migrated retry parked long enough to kill the
# victim between the checkpoint fetch and the resume.
ref_log="$(mktemp)"
c1_log="$(mktemp)"
c2_log="$(mktemp)"
cfleet_log="$(mktemp)"
run_out="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$ref_log" 2>&1 &
ref_pid=$!
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 CAPSULE_SERVE_CHECKPOINTS=8 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$c1_log" 2>&1 &
c1_pid=$!
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 CAPSULE_SERVE_CHECKPOINTS=8 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$c2_log" 2>&1 &
c2_pid=$!
ref_addr="$(wait_addr "$ref_log")"
c1_addr="$(wait_addr "$c1_log")"
c2_addr="$(wait_addr "$c2_log")"
target/release/capsule-fleet --addr 127.0.0.1:0 \
    --backend "$c1_addr" --backend "$c2_addr" \
    --probe-ms 100 --backoff-ms 1000 >"$cfleet_log" 2>&1 &
cfleet_pid=$!
cfleet_addr="$(wait_addr "$cfleet_log")"
# Baseline: the same job, uninterrupted, on a plain server. Its
# response also yields the job's cache_key — the preempt/resume token.
base_out="$(target/release/capsule-client "$ref_addr" run ablation_policies smoke --compact)"
job_key="$(printf '%s' "$base_out" | sed -n 's/.*"cache_key":"\([0-9a-f]*\)".*/\1/p')"
base_report="${base_out#*\"report\":}"
if [ -z "$job_key" ] || [ "$base_report" = "$base_out" ]; then
    echo "baseline run produced no cache_key/report:" >&2
    echo "$base_out" >&2
    exit 1
fi
base_report="${base_report%\}}"
target/release/capsule-client "$cfleet_addr" run ablation_policies smoke --compact >"$run_out" &
run_pid=$!
# Preempt the in-flight job through the fleet. The first polls race the
# backend admission and answer not-running; keep trying until one
# lands or the job finishes.
p_out=""
i=0
while [ $i -lt 300 ]; do
    if p_out="$(target/release/capsule-client "$cfleet_addr" preempt "$job_key" --compact 2>/dev/null)"; then
        break
    fi
    p_out=""
    kill -0 "$run_pid" 2>/dev/null || break
    sleep 0.02
    i=$((i + 1))
done
if [ -z "$p_out" ]; then
    echo "preempt never landed; the job finished first:" >&2
    cat "$run_out" >&2
    exit 1
fi
victim="$(printf '%s' "$p_out" | sed -n 's/.*"backend":"\(b[01]\)".*/\1/p')"
if [ "$victim" = "b0" ]; then
    victim_pid=$c1_pid
    surv_name="b1"
    surv_addr="$c2_addr"
    surv_pid=$c2_pid
elif [ "$victim" = "b1" ]; then
    victim_pid=$c2_pid
    surv_name="b0"
    surv_addr="$c1_addr"
    surv_pid=$c1_pid
else
    echo "preempt response names no backend: $p_out" >&2
    exit 1
fi
# Wait for the coordinator to fetch the checkpoint off the victim, then
# kill the victim — the resume must not need it.
migrated=""
i=0
while [ $i -lt 100 ]; do
    migrated="$(target/release/capsule-client "$cfleet_addr" stats --compact \
        | sed -n 's/.*"jobs_migrated":\([0-9]*\).*/\1/p')"
    [ "$migrated" = "1" ] && break
    sleep 0.05
    i=$((i + 1))
done
if [ "$migrated" != "1" ]; then
    echo "fleet never fetched the checkpoint (jobs_migrated=$migrated)" >&2
    exit 1
fi
kill -9 "$victim_pid" 2>/dev/null || true
if ! wait "$run_pid"; then
    echo "migrated run failed:" >&2
    cat "$run_out" >&2
    exit 1
fi
fleet_out="$(cat "$run_out")"
if ! printf '%s' "$fleet_out" | grep -qF "\"backend\":\"$surv_name\""; then
    echo "resumed job did not land on survivor $surv_name:" >&2
    echo "$fleet_out" >&2
    exit 1
fi
if ! printf '%s' "$fleet_out" | grep -qF "\"report\":$base_report"; then
    echo "migrated report differs from the uninterrupted baseline" >&2
    exit 1
fi
attempts="$(printf '%s' "$fleet_out" | sed -n 's/.*"attempts":\([0-9]*\).*/\1/p')"
if [ "${attempts:-0}" -lt 2 ]; then
    echo "expected a migration retry (attempts >= 2), got '$attempts'" >&2
    exit 1
fi
resumed="$(target/release/capsule-client "$surv_addr" stats --compact \
    | sed -n 's/.*"jobs_resumed":\([0-9]*\).*/\1/p')"
if [ "$resumed" != "1" ]; then
    echo "survivor reports jobs_resumed=$resumed, expected 1 (restart instead of resume?)" >&2
    exit 1
fi
# The checkpoint counters must appear in both metrics expositions and
# stay scrape-stable after the migration.
fm1="$(target/release/capsule-client "$cfleet_addr" metrics --compact)"
fm2="$(target/release/capsule-client "$cfleet_addr" metrics --compact)"
sm1="$(target/release/capsule-client "$surv_addr" metrics --compact)"
sm2="$(target/release/capsule-client "$surv_addr" metrics --compact)"
if [ "$fm1" != "$fm2" ] || [ "$sm1" != "$sm2" ]; then
    echo "checkpoint metrics are not scrape-stable" >&2
    exit 1
fi
fleet_migrated="$(printf '%s' "$fm1" | sed -n 's/.*capsule_fleet_jobs_migrated_total \([0-9]*\).*/\1/p')"
serve_resumed="$(printf '%s' "$sm1" | sed -n 's/.*capsule_serve_jobs_resumed_total \([0-9]*\).*/\1/p')"
if [ "$fleet_migrated" != "1" ] || [ "$serve_resumed" != "1" ]; then
    echo "checkpoint counters missing from metrics (migrated='$fleet_migrated' resumed='$serve_resumed')" >&2
    exit 1
fi
target/release/capsule-client "$cfleet_addr" shutdown --compact
target/release/capsule-client "$ref_addr" shutdown --compact
target/release/capsule-client "$surv_addr" shutdown --compact
wait "$cfleet_pid" "$ref_pid" "$surv_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
rm -f "$ref_log" "$c1_log" "$c2_log" "$cfleet_log" "$run_out"

echo "CI gate passed."
