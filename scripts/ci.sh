#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test and lint with no
# network or registry access (the tree has zero external dependencies).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI gate passed."
