#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test and lint with no
# network or registry access (the tree has zero external dependencies).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> bench_sim determinism smoke"
# The simulator's fast path (event-driven wakeup, idle fast-forward)
# must stay bit-deterministic: two smoke-scale runs have to produce
# byte-identical simulated numbers and byte-identical per-entry
# reports. --deterministic omits host-timing fields; the --baseline
# re-read doubles as the "report parses" check (it exits non-zero on
# malformed JSON).
bench_dir="$(mktemp -d)"
target/release/bench_sim --scale smoke --deterministic \
    --out "$bench_dir/a.json" --reports "$bench_dir/reports_a" >/dev/null
target/release/bench_sim --scale smoke --deterministic \
    --out "$bench_dir/b.json" --reports "$bench_dir/reports_b" \
    --baseline "$bench_dir/a.json" >/dev/null
cmp "$bench_dir/a.json" "$bench_dir/b.json"
diff -r "$bench_dir/reports_a" "$bench_dir/reports_b"

echo "==> bench_sim --compare gate smoke"
# The throughput-regression gate must be deterministic in both
# directions: against a synthetic near-zero baseline every entry is a
# speedup (exit 0); against an unreachably fast baseline every entry is
# a regression (exit nonzero). Real thresholds live in docs/PERF.md;
# this only pins the gate's mechanics, not the host's speed.
printf '%s' '{"schema":"capsule-bench-sim/1","entries":[{"entry":"toolchain_overhead","sim_cycles_per_sec":0.001}]}' \
    >"$bench_dir/base_slow.json"
printf '%s' '{"schema":"capsule-bench-sim/1","entries":[{"entry":"toolchain_overhead","sim_cycles_per_sec":1e15}]}' \
    >"$bench_dir/base_fast.json"
target/release/bench_sim --scale smoke --entries toolchain_overhead \
    --out "$bench_dir/cmp.json" --compare "$bench_dir/base_slow.json" >/dev/null
if target/release/bench_sim --scale smoke --entries toolchain_overhead \
    --out "$bench_dir/cmp.json" --compare "$bench_dir/base_fast.json" >/dev/null; then
    echo "bench_sim --compare failed to flag a regression" >&2
    exit 1
fi
rm -rf "$bench_dir"

echo "==> bench_serve determinism + compare gate smoke"
# The server benchmark must be doubly deterministic: two fixed-seed
# --deterministic runs byte-identical, and each run self-checks that
# the v1 and v2 legs of every load produce the same per-job report
# digest (exit nonzero on a parity break). The throughput gate mirrors
# bench_sim's: a near-zero synthetic baseline passes, an unreachably
# fast one must fail — write-the-file-then-gate semantics included.
sbench_dir="$(mktemp -d)"
target/release/bench_serve --loads 30 --jobs 12 --deterministic \
    --out "$sbench_dir/a.json" >/dev/null
target/release/bench_serve --loads 30 --jobs 12 --deterministic \
    --out "$sbench_dir/b.json" >/dev/null
cmp "$sbench_dir/a.json" "$sbench_dir/b.json"
printf '%s' '{"schema":"capsule-bench-serve/1","entries":[{"entry":"load30_v1","throughput_rps":0.001},{"entry":"load30_v2","throughput_rps":0.001}]}' \
    >"$sbench_dir/base_slow.json"
printf '%s' '{"schema":"capsule-bench-serve/1","entries":[{"entry":"load30_v1","throughput_rps":1e15}]}' \
    >"$sbench_dir/base_fast.json"
target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 \
    --out "$sbench_dir/cmp.json" --compare "$sbench_dir/base_slow.json" >/dev/null
if target/release/bench_serve --loads 30 --jobs 12 --overhead-probes 20 \
    --out "$sbench_dir/cmp.json" --compare "$sbench_dir/base_fast.json" >/dev/null; then
    echo "bench_serve --compare failed to flag a regression" >&2
    exit 1
fi
rm -rf "$sbench_dir"
echo "bench_serve: deterministic runs byte-identical, compare gate passes and fails correctly"

echo "==> capsule-fuzz differential smoke"
# Fixed-seed, fixed-count sweep over the reduced config matrix: every
# generated program must produce identical architectural results across
# machine shapes, division policies, checkpoint/resume and the decode
# cache (docs/FUZZ.md). On divergence the fuzzer exits non-zero after
# writing a replayable artifact — surface its path loudly. Then replay
# the checked-in minimized corpus, which must stay clean.
fuzz_dir="$(mktemp -d)"
if ! target/release/capsule-fuzz --seed 1 --count 200 --matrix reduced --out "$fuzz_dir"; then
    echo "capsule-fuzz sweep diverged; replayable artifacts in $fuzz_dir:" >&2
    ls "$fuzz_dir" >&2
    exit 1
fi
target/release/capsule-fuzz --replay crates/capsule-fuzz/corpus
rm -rf "$fuzz_dir"

echo "==> capsule-serve smoke test"
# Start the job server on an ephemeral port, drive it with the
# deterministic load generator (which also asserts that a repeated
# request is a byte-identical cache hit), then shut it down cleanly
# over the wire. The server checkpoints (docs/CHECKPOINT.md) and the
# load generator preempts-and-resumes a seeded subset of jobs
# (--preempt-rate), so the swap path runs under mixed traffic too.
serve_log="$(mktemp)"
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "capsule-serve did not come up:" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/release/capsule-loadgen "$addr" --jobs 8 --threads 3 --preempt-rate 3
# Differential leg: seeded fuzz-generated programs as server jobs, each
# report compared byte-for-byte against an in-process run of the same
# scenario set (docs/FUZZ.md) — the server path (cache keys, overrides,
# checkpointed runs) must be invisible to results.
target/release/capsule-loadgen "$addr" --fuzz 4
# Open-loop determinism: two fixed-seed Poisson/Zipf replays per
# protocol against the live server must print byte-identical summaries
# (the digest covers every report byte of every job), and the v1 and
# v2 digests must agree — the framed protocol cannot fork a result.
# Jobs fit the workers+queue capacity so nothing races backpressure.
ol_v1a="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
ol_v1b="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
ol_v2a="$(target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic --proto v2)"
ol_v2b="$(CAPSULE_LOADGEN_PROTO=v2 target/release/capsule-loadgen "$addr" --open-loop 30 --zipf 0.8 --seed 7 --jobs 8 --threads 2 --deterministic)"
if [ "$ol_v1a" != "$ol_v1b" ] || [ "$ol_v2a" != "$ol_v2b" ]; then
    echo "open-loop replay is not deterministic:" >&2
    printf '%s\n%s\n%s\n%s\n' "$ol_v1a" "$ol_v1b" "$ol_v2a" "$ol_v2b" >&2
    exit 1
fi
d_v1="$(printf '%s' "$ol_v1a" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')"
d_v2="$(printf '%s' "$ol_v2a" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')"
if [ -z "$d_v1" ] || [ "$d_v1" != "$d_v2" ]; then
    echo "v1/v2 open-loop digests disagree: '$d_v1' vs '$d_v2'" >&2
    exit 1
fi
# Protocol parity over one-shot clients: the same (warmed) job asked
# over v1 and v2 must answer with byte-identical responses.
target/release/capsule-client "$addr" run table3_divisions smoke --compact >/dev/null
pv1="$(target/release/capsule-client "$addr" --proto v1 run table3_divisions smoke --compact)"
pv2="$(target/release/capsule-client "$addr" --proto v2 run table3_divisions smoke --compact)"
if [ "$pv1" != "$pv2" ]; then
    echo "v1 and v2 client answers diverged:" >&2
    printf '%s\n%s\n' "$pv1" "$pv2" >&2
    exit 1
fi
echo "open-loop determinism + v1/v2 parity: ok (digest $d_v1)"
target/release/capsule-client "$addr" shutdown --compact
wait "$serve_pid"
rm -f "$serve_log"

echo "==> capsule-fleet smoke test"
# Two backends behind one coordinator, all on ephemeral loopback ports.
# The load generator's --fleet mode sweeps the full catalog (one
# smoke-scale job per entry) through the coordinator, then --parity
# replays every scenario against backend 1 directly and requires each
# report to be byte-identical — the fleet must be invisible to clients.
wait_addr() {
    _log="$1"
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr="$(sed -n 's/^listening on //p' "$_log")"
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "server did not come up:" >&2
        cat "$_log" >&2
        exit 1
    fi
    printf '%s' "$_addr"
}
b1_log="$(mktemp)"
b2_log="$(mktemp)"
fleet_log="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$b1_log" 2>&1 &
b1_pid=$!
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$b2_log" 2>&1 &
b2_pid=$!
b1_addr="$(wait_addr "$b1_log")"
b2_addr="$(wait_addr "$b2_log")"
target/release/capsule-fleet --addr 127.0.0.1:0 \
    --backend "$b1_addr" --backend "$b2_addr" --probe-ms 100 >"$fleet_log" 2>&1 &
fleet_pid=$!
fleet_addr="$(wait_addr "$fleet_log")"
target/release/capsule-loadgen "$fleet_addr" --fleet --threads 3 --parity "$b1_addr"
# Fleet stats must show both backends reporting into the aggregate.
reporting="$(target/release/capsule-client "$fleet_addr" stats --compact \
    | sed -n 's/.*"backends_reporting":\([0-9]*\).*/\1/p')"
if [ "$reporting" != "2" ]; then
    echo "expected 2 backends reporting, got '$reporting'" >&2
    exit 1
fi
echo "==> observability smoke test"
# A traced job through the fleet must be reconstructable end to end:
# the trace op's tree has to contain both the coordinator's dispatch
# span and the backend's execution span (grafted at query time). The
# budget is non-default so the job's canonical form misses the caches
# the sweep above populated and the backend really executes. Then the
# metrics exposition must be scrape-stable: two back-to-back scrapes
# byte-identical (docs/OBSERVABILITY.md).
target/release/capsule-client "$fleet_addr" --compact \
    '{"op":"run","scenario":"table1_config","scale":"smoke","budget":190000000000,"trace_id":"ci-t1"}' \
    >/dev/null
trace_out="$(target/release/capsule-client "$fleet_addr" trace ci-t1 --compact)"
for span in '"name":"fleet.dispatch"' '"name":"serve.execute"'; do
    case "$trace_out" in
        *"$span"*) ;;
        *)
            echo "trace ci-t1 is missing $span:" >&2
            echo "$trace_out" >&2
            exit 1
            ;;
    esac
done
m1="$(target/release/capsule-client "$fleet_addr" metrics --compact)"
m2="$(target/release/capsule-client "$fleet_addr" metrics --compact)"
if [ "$m1" != "$m2" ]; then
    echo "metrics exposition is not scrape-stable:" >&2
    printf '%s\n%s\n' "$m1" "$m2" >&2
    exit 1
fi
target/release/capsule-client "$fleet_addr" shutdown --compact
target/release/capsule-client "$b1_addr" shutdown --compact
target/release/capsule-client "$b2_addr" shutdown --compact
wait "$fleet_pid" "$b1_pid" "$b2_pid"
rm -f "$b1_log" "$b2_log" "$fleet_log"

echo "==> checkpoint migration smoke test"
# A preempted job must migrate, not restart (docs/CHECKPOINT.md): two
# checkpointing backends behind a coordinator, preempt a long job
# mid-run, kill the backend it was parked on, and the fleet must resume
# it on the survivor from the carried checkpoint — with the final
# report byte-identical to a direct uninterrupted run. The generous
# --backoff-ms keeps the migrated retry parked long enough to kill the
# victim between the checkpoint fetch and the resume.
ref_log="$(mktemp)"
c1_log="$(mktemp)"
c2_log="$(mktemp)"
cfleet_log="$(mktemp)"
run_out="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$ref_log" 2>&1 &
ref_pid=$!
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 CAPSULE_SERVE_CHECKPOINTS=8 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$c1_log" 2>&1 &
c1_pid=$!
CAPSULE_SERVE_CHECKPOINT_CYCLES=50000 CAPSULE_SERVE_CHECKPOINTS=8 \
    target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$c2_log" 2>&1 &
c2_pid=$!
ref_addr="$(wait_addr "$ref_log")"
c1_addr="$(wait_addr "$c1_log")"
c2_addr="$(wait_addr "$c2_log")"
target/release/capsule-fleet --addr 127.0.0.1:0 \
    --backend "$c1_addr" --backend "$c2_addr" \
    --probe-ms 100 --backoff-ms 1000 >"$cfleet_log" 2>&1 &
cfleet_pid=$!
cfleet_addr="$(wait_addr "$cfleet_log")"
# Baseline: the same job, uninterrupted, on a plain server. Its
# response also yields the job's cache_key — the preempt/resume token.
base_out="$(target/release/capsule-client "$ref_addr" run ablation_policies smoke --compact)"
job_key="$(printf '%s' "$base_out" | sed -n 's/.*"cache_key":"\([0-9a-f]*\)".*/\1/p')"
base_report="${base_out#*\"report\":}"
if [ -z "$job_key" ] || [ "$base_report" = "$base_out" ]; then
    echo "baseline run produced no cache_key/report:" >&2
    echo "$base_out" >&2
    exit 1
fi
base_report="${base_report%\}}"
target/release/capsule-client "$cfleet_addr" run ablation_policies smoke --compact >"$run_out" &
run_pid=$!
# Preempt the in-flight job through the fleet. The first polls race the
# backend admission and answer not-running; keep trying until one
# lands or the job finishes.
p_out=""
i=0
while [ $i -lt 300 ]; do
    if p_out="$(target/release/capsule-client "$cfleet_addr" preempt "$job_key" --compact 2>/dev/null)"; then
        break
    fi
    p_out=""
    kill -0 "$run_pid" 2>/dev/null || break
    sleep 0.02
    i=$((i + 1))
done
if [ -z "$p_out" ]; then
    echo "preempt never landed; the job finished first:" >&2
    cat "$run_out" >&2
    exit 1
fi
victim="$(printf '%s' "$p_out" | sed -n 's/.*"backend":"\(b[01]\)".*/\1/p')"
if [ "$victim" = "b0" ]; then
    victim_pid=$c1_pid
    surv_name="b1"
    surv_addr="$c2_addr"
    surv_pid=$c2_pid
elif [ "$victim" = "b1" ]; then
    victim_pid=$c2_pid
    surv_name="b0"
    surv_addr="$c1_addr"
    surv_pid=$c1_pid
else
    echo "preempt response names no backend: $p_out" >&2
    exit 1
fi
# Wait for the coordinator to fetch the checkpoint off the victim, then
# kill the victim — the resume must not need it.
migrated=""
i=0
while [ $i -lt 100 ]; do
    migrated="$(target/release/capsule-client "$cfleet_addr" stats --compact \
        | sed -n 's/.*"jobs_migrated":\([0-9]*\).*/\1/p')"
    [ "$migrated" = "1" ] && break
    sleep 0.05
    i=$((i + 1))
done
if [ "$migrated" != "1" ]; then
    echo "fleet never fetched the checkpoint (jobs_migrated=$migrated)" >&2
    exit 1
fi
kill -9 "$victim_pid" 2>/dev/null || true
if ! wait "$run_pid"; then
    echo "migrated run failed:" >&2
    cat "$run_out" >&2
    exit 1
fi
fleet_out="$(cat "$run_out")"
if ! printf '%s' "$fleet_out" | grep -qF "\"backend\":\"$surv_name\""; then
    echo "resumed job did not land on survivor $surv_name:" >&2
    echo "$fleet_out" >&2
    exit 1
fi
if ! printf '%s' "$fleet_out" | grep -qF "\"report\":$base_report"; then
    echo "migrated report differs from the uninterrupted baseline" >&2
    exit 1
fi
attempts="$(printf '%s' "$fleet_out" | sed -n 's/.*"attempts":\([0-9]*\).*/\1/p')"
if [ "${attempts:-0}" -lt 2 ]; then
    echo "expected a migration retry (attempts >= 2), got '$attempts'" >&2
    exit 1
fi
resumed="$(target/release/capsule-client "$surv_addr" stats --compact \
    | sed -n 's/.*"jobs_resumed":\([0-9]*\).*/\1/p')"
if [ "$resumed" != "1" ]; then
    echo "survivor reports jobs_resumed=$resumed, expected 1 (restart instead of resume?)" >&2
    exit 1
fi
# The checkpoint counters must appear in both metrics expositions and
# stay scrape-stable after the migration.
fm1="$(target/release/capsule-client "$cfleet_addr" metrics --compact)"
fm2="$(target/release/capsule-client "$cfleet_addr" metrics --compact)"
sm1="$(target/release/capsule-client "$surv_addr" metrics --compact)"
sm2="$(target/release/capsule-client "$surv_addr" metrics --compact)"
if [ "$fm1" != "$fm2" ] || [ "$sm1" != "$sm2" ]; then
    echo "checkpoint metrics are not scrape-stable" >&2
    exit 1
fi
fleet_migrated="$(printf '%s' "$fm1" | sed -n 's/.*capsule_fleet_jobs_migrated_total \([0-9]*\).*/\1/p')"
serve_resumed="$(printf '%s' "$sm1" | sed -n 's/.*capsule_serve_jobs_resumed_total \([0-9]*\).*/\1/p')"
if [ "$fleet_migrated" != "1" ] || [ "$serve_resumed" != "1" ]; then
    echo "checkpoint counters missing from metrics (migrated='$fleet_migrated' resumed='$serve_resumed')" >&2
    exit 1
fi
target/release/capsule-client "$cfleet_addr" shutdown --compact
target/release/capsule-client "$ref_addr" shutdown --compact
target/release/capsule-client "$surv_addr" shutdown --compact
wait "$cfleet_pid" "$ref_pid" "$surv_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
rm -f "$ref_log" "$c1_log" "$c2_log" "$cfleet_log" "$run_out"

echo "CI gate passed."
