#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test and lint with no
# network or registry access (the tree has zero external dependencies).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> capsule-serve smoke test"
# Start the job server on an ephemeral port, drive it with the
# deterministic load generator (which also asserts that a repeated
# request is a byte-identical cache hit), then shut it down cleanly
# over the wire.
serve_log="$(mktemp)"
target/release/capsule-serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "capsule-serve did not come up:" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/release/capsule-loadgen "$addr" --jobs 8 --threads 3
target/release/capsule-client "$addr" shutdown --compact
wait "$serve_pid"
rm -f "$serve_log"

echo "CI gate passed."
