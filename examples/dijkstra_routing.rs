//! The paper's running example (§2, Figure 3): Dijkstra routing on the
//! three machines.
//!
//! Runs one random graph through the imperative sequential version
//! (superscalar), the statically parallelized version (standard SMT), and
//! the component version (SOMT), and prints the Figure 3-style
//! comparison.
//!
//! ```text
//! cargo run --release --example dijkstra_routing [nodes] [seed]
//! ```

use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;
use capsule::workloads::dijkstra::Dijkstra;
use capsule::workloads::{Variant, Workload};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let w = Dijkstra::figure3(seed, nodes);
    println!(
        "Dijkstra on a random graph: {} nodes, {} edges (seed {seed})",
        w.graph().len(),
        w.graph().edges()
    );
    println!("host-reference distance checksum: {}\n", w.expected_checksum());

    let runs = [
        ("sequential / superscalar", Variant::Sequential, MachineConfig::table1_superscalar()),
        ("static 8-way / SMT", Variant::Static(8), MachineConfig::table1_smt()),
        ("component / SOMT", Variant::Component, MachineConfig::table1_somt()),
    ];

    let mut baseline = None;
    for (name, variant, cfg) in runs {
        let program = w.program(variant);
        let mut m = Machine::new(cfg, &program).expect("machine builds");
        let o = m.run(10_000_000_000).expect("runs to halt");
        w.check(&o.output).expect("correct distances");
        let cycles = o.cycles();
        let speedup = match baseline {
            None => {
                baseline = Some(cycles);
                1.0
            }
            Some(b) => b as f64 / cycles as f64,
        };
        println!("{name:<28} {:>12} cycles   speedup {speedup:>5.2}x", cycles);
        println!(
            "{:<28} divisions {}/{} granted, {} deaths, {} lock stalls",
            "",
            o.stats.divisions_granted(),
            o.stats.divisions_requested,
            o.stats.deaths,
            o.stats.lock_stalls
        );
    }
    println!("\n(The paper reports 2.51x component-over-superscalar and 1.23x");
    println!(" component-over-static for 1000-node graphs — Figure 3 / §5.)");
}
