//! The Capsule C toolchain (paper §3.2): compile a component program from
//! source and watch the architecture steer it.
//!
//! With a path argument, compiles and runs that file; without one, runs a
//! built-in divide-and-conquer reduction.
//!
//! ```text
//! cargo run --release --example capsule_c [program.cap]
//! ```

use capsule::lang::compile;
use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;

const DEFAULT_PROGRAM: &str = r"
// Component sum over a global array: the worker divides itself in half
// whenever the architecture grants the probe (the paper's Figure 2).
global total;
global arr[4096];

worker polysum(lo, hi) {
    while (hi - lo > 512) {
        let mid = lo + (hi - lo) / 2;
        coworker polysum(mid, hi);     // nthr: the hardware decides
        hi = mid;
    }
    let acc = 0;
    while (lo < hi) {
        let x = arr[lo];
        acc = acc + (x * x + 3 * x + 7) % 1000003;
        lo = lo + 1;
    }
    lock (&total) { total = total + acc; }
}

worker main() {
    let i = 0;
    while (i < 4096) { arr[i] = i * 7 % 1000 - 500; i = i + 1; }
    let round = 0;
    while (round < 4) {
        coworker polysum(0, 4096);
        join;
        round = round + 1;
    }
    out(total);
}
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEFAULT_PROGRAM.to_string(),
    };

    let program = match compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error at {e}");
            std::process::exit(1);
        }
    };
    println!(
        "compiled: {} instructions, {} bytes of data\n",
        program.text.len(),
        program.data.len()
    );

    for (name, cfg) in [
        ("superscalar (divisions denied)", MachineConfig::table1_superscalar()),
        ("SOMT (hardware-steered)", MachineConfig::table1_somt()),
    ] {
        let mut m = Machine::new(cfg, &program).expect("program loads");
        match m.run(50_000_000_000) {
            Ok(o) => {
                println!("{name}:");
                println!("  output    {:?}", o.ints());
                println!("  cycles    {}", o.cycles());
                println!(
                    "  divisions {} granted / {} probed, {} workers total\n",
                    o.stats.divisions_granted(),
                    o.stats.divisions_requested,
                    o.tree.len()
                );
            }
            Err(e) => {
                eprintln!("{name}: runtime error: {e}");
                std::process::exit(1);
            }
        }
    }
}
