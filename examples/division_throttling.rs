//! Figure 7's mechanism, live: division throttling on small parallel
//! sections.
//!
//! LZW's dictionary-search workers do almost no work before dying, so the
//! greedy policy wastes cycles creating them. The paper's death-rate
//! throttle (deny while ≥ contexts/2 workers died in the last 128 cycles)
//! recovers the loss. This example runs the same LZW program under both
//! policies and prints the comparison.
//!
//! ```text
//! cargo run --release --example division_throttling [chars]
//! ```

use capsule::model::config::{DivisionMode, MachineConfig};
use capsule::sim::machine::Machine;
use capsule::workloads::lzw::Lzw;
use capsule::workloads::{Variant, Workload};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1200);
    let w = Lzw::figure7(5, n);
    let program = w.program(Variant::Component);
    println!("LZW compressing {n} characters (alphabet 8) on 8-context SOMT\n");

    let mut results = Vec::new();
    for (name, mode) in [
        ("greedy (no throttle)", DivisionMode::Greedy),
        ("greedy + death-rate throttle", DivisionMode::GreedyThrottled),
    ] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.division_mode = mode;
        let mut m = Machine::new(cfg, &program).expect("machine builds");
        let o = m.run(10_000_000_000).expect("runs to halt");
        w.check(&o.output).expect("correct code stream");
        println!("{name}:");
        println!("  cycles              {}", o.cycles());
        println!(
            "  divisions granted   {} of {}",
            o.stats.divisions_granted(),
            o.stats.divisions_requested
        );
        println!("  denied by throttle  {}", o.stats.divisions_denied_throttled);
        println!("  worker deaths       {}\n", o.stats.deaths);
        results.push((name, o.cycles()));
    }
    let (g, t) = (results[0].1 as f64, results[1].1 as f64);
    println!("throttle speedup over plain greedy: {:.2}x  (Figure 7)", g / t);
}
