//! The CAPSULE division policy on real threads: conditional division
//! versus always-spawn versus sequential, at native speed.
//!
//! ```text
//! cargo run --release --example native_quicksort [len] [workers]
//! ```

use std::time::Instant;

use capsule::rt::{capsule_sort, RtConfig};

fn data(len: usize) -> Vec<i64> {
    (0..len as i64).map(|i| (i.wrapping_mul(2654435761)) % 1_000_003).collect()
}

fn main() {
    let len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    // Worker slots model the paper's hardware contexts; on a small host
    // the threads timeshare, which still demonstrates the policy.
    let workers = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(8)
        .max(4);
    println!("component quicksort of {len} values, {workers} worker slots\n");

    for (name, cfg) in [
        ("sequential (probes always denied)", RtConfig::never()),
        ("always-spawn (Cilk-like greedy)", RtConfig::always(workers)),
        ("CAPSULE (greedy + death-rate throttle)", RtConfig::somt_like(workers)),
    ] {
        let mut v = data(len);
        let t = Instant::now();
        let stats = capsule_sort(cfg, &mut v);
        let elapsed = t.elapsed();
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted!");
        println!("{name:<40} {elapsed:>10.2?}");
        println!(
            "{:<40} probes {} | granted {} ({:.0}%) | throttled {} | peak workers {}",
            "",
            stats.divisions_requested,
            stats.divisions_granted,
            100.0 * stats.grant_rate(),
            stats.denied_throttled,
            stats.max_live
        );
    }
}
