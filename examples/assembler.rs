//! The CAP64 toolchain in action: assemble a textual listing, disassemble
//! it back, encode it to binary, and run it on the SOMT machine.
//!
//! ```text
//! cargo run --release --example assembler
//! ```

use capsule::isa::program::{DataBuilder, Program, ThreadSpec};
use capsule::isa::{encode, text};
use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;

const LISTING: &str = r"
# factorial(10) on CAP64
    li r1, 10        # n
    li r2, 1         # acc
loop:
    mul r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    out r2
    halt
";

fn main() {
    println!("--- source listing ---{LISTING}");

    let program_text = text::parse(LISTING).expect("listing parses");
    println!("--- disassembly ({} instructions) ---", program_text.len());
    print!("{}", text::disassemble(&program_text));

    let words = encode::encode_all(&program_text).expect("encodes");
    println!("\n--- binary encoding ---");
    for (i, pair) in words.chunks(2).enumerate() {
        println!("{i:4}: {:016x} {:016x}", pair[0], pair[1]);
    }
    let decoded = encode::decode_all(&words).expect("decodes");
    assert_eq!(format!("{decoded:?}"), format!("{program_text:?}"));
    println!("(decode round-trip verified)");

    let program =
        Program::new(program_text, DataBuilder::new().build(), 4096).with_thread(ThreadSpec::at(0));
    let mut m = Machine::new(MachineConfig::table1_somt(), &program).expect("machine builds");
    let o = m.run(100_000).expect("runs to halt");
    println!("\n--- execution ---");
    println!("output: {:?}", o.ints());
    println!("cycles: {}", o.cycles());
    assert_eq!(o.ints(), vec![3_628_800]);
}
