//! Quickstart: write a component worker by hand, watch the architecture
//! steer its divisions.
//!
//! The program is the minimal CAPSULE shape (paper §2, Figure 2): a worker
//! sums a range of numbers; at every iteration it *probes* the
//! architecture with `nthr` and, when granted, divides in half. Run it on
//! the paper's three machines and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use capsule::isa::asm::Asm;
use capsule::isa::program::{DataBuilder, Program, ThreadSpec};
use capsule::isa::reg::Reg;
use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;

/// Sum `1..=n` with a divide-in-half component worker.
fn build_program(n: i64) -> Program {
    let mut d = DataBuilder::new();
    let total = d.word(0); // lock-protected global accumulator
    let tokens = d.word(1); // join counter: one token per live worker

    let (lo, hi) = (Reg::A0, Reg::A1);
    let (mid, local, probe, t0, t1) = (Reg(10), Reg(11), Reg(12), Reg(13), Reg(14));

    let mut a = Asm::new();
    a.bind("worker");
    a.li(local, 0);
    a.bind("loop");
    // small ranges are computed directly
    a.sub(t0, hi, lo);
    a.slti(t1, t0, 64);
    a.bne(t1, Reg::ZERO, "leaf");
    // probe + divide: child takes [mid, hi), parent keeps [lo, mid)
    a.srai(t0, t0, 1);
    a.add(mid, lo, t0);
    // count the child's token before it can exist
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, 1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.nthr(probe, "child"); // the architecture decides!
    a.li(t0, -1);
    a.bne(probe, t0, "granted");
    // denied: give the token back and carry on sequentially (case -1)
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, -1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.j("leaf");
    a.bind("granted");
    a.mv(hi, mid);
    a.j("loop");
    a.bind("child");
    a.mv(lo, mid);
    a.li(local, 0);
    a.j("loop");
    // leaf: sum [lo, hi) sequentially
    a.bind("leaf");
    a.bind("leaf_loop");
    a.bge(lo, hi, "merge");
    a.add(local, local, lo);
    a.addi(lo, lo, 1);
    a.j("leaf_loop");
    // merge on death: fold the local sum into the global, release a token
    a.bind("merge");
    a.li(t0, total as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.add(t1, t1, local);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, -1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    // the ancestor joins; divided workers die
    a.tid(t1);
    a.bne(t1, Reg::ZERO, "die");
    a.li(t0, tokens as i64);
    a.bind("join");
    a.ld(t1, 0, t0);
    a.bne(t1, Reg::ZERO, "join");
    a.li(t0, total as i64);
    a.ld(t1, 0, t0);
    a.out(t1);
    a.halt();
    a.bind("die");
    a.kthr();

    Program::new(a.assemble().expect("assembles"), d.build(), 1 << 16)
        .with_thread(ThreadSpec::at(0).with_reg(Reg::A0, 1).with_reg(Reg::A1, n + 1))
}

fn main() {
    let n = 20_000;
    let program = build_program(n);
    println!("component sum of 1..={n} — expected {}\n", n * (n + 1) / 2);

    for (name, cfg) in [
        ("superscalar (1 context, divisions denied)", MachineConfig::table1_superscalar()),
        ("SOMT (8 contexts, hardware-steered divisions)", MachineConfig::table1_somt()),
    ] {
        let mut m = Machine::new(cfg, &program).expect("valid machine + program");
        let o = m.run(1_000_000_000).expect("runs to halt");
        println!("{name}:");
        println!("  result            {}", o.ints()[0]);
        println!("  cycles            {}", o.cycles());
        println!(
            "  divisions         {} requested, {} granted",
            o.stats.divisions_requested,
            o.stats.divisions_granted()
        );
        println!("  IPC               {:.2}", o.stats.ipc());
        println!("  workers ever      {}\n", o.tree.len());
    }
}
