//! The paper's Figure 1, reconstructed from a live run: a component
//! Dijkstra walk over a small graph, with every division decision the
//! architecture makes printed as it happens ("on step 1, the architecture
//! lets the first component replicate ... on step 2 ... the architecture
//! denies the replication").
//!
//! ```text
//! cargo run --release --example figure1_walkthrough
//! ```

use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;
use capsule::sim::TraceKind;
use capsule::workloads::datasets::Graph;
use capsule::workloads::dijkstra::Dijkstra;
use capsule::workloads::{Variant, Workload};

fn main() {
    // A small graph so the whole walk fits on one screen; a 3-context
    // machine so denials actually happen, as in the figure.
    let graph = Graph::random(21, 14, 3, 9);
    let w = Dijkstra::new(graph);
    let program = w.program(Variant::Component);

    let mut cfg = MachineConfig::table1_somt();
    cfg.contexts = 3;
    let mut m = Machine::new(cfg, &program).expect("machine builds");
    m.enable_trace(120);
    let o = m.run(100_000_000).expect("halts");
    w.check(&o.output).expect("distances are correct");

    println!("Figure 1 walkthrough — component Dijkstra on a 3-context SOMT\n");
    let trace = m.trace().expect("tracing was enabled");
    println!("{}", trace.render());

    let grants = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Division { child: Some(_), .. }))
        .count();
    let denials = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Division { child: None, .. }))
        .count();
    println!(
        "summary: {grants} divisions granted, {denials} denied, {} workers total,",
        o.tree.len()
    );
    println!("         distance checksum {} (matches the host reference)", o.ints()[0]);
}
