//! Workspace-level integration: every workload × variant runs end-to-end
//! on the appropriate machine, produces the host-reference result, and
//! keeps the machine's bookkeeping invariants intact.

use capsule::model::config::MachineConfig;
use capsule::sim::machine::Machine;
use capsule::sim::{Interp, InterpConfig, SimOutcome};
use capsule::workloads::datasets::{random_list, ListShape, Tree};
use capsule::workloads::dijkstra::Dijkstra;
use capsule::workloads::lzw::Lzw;
use capsule::workloads::perceptron::Perceptron;
use capsule::workloads::quicksort::QuickSort;
use capsule::workloads::spec::{Bzip2, Crafty, Mcf, Vpr};
use capsule::workloads::{Variant, Workload};

const BUDGET: u64 = 20_000_000_000;

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Dijkstra::figure3(77, 80)),
        Box::new(QuickSort::new(random_list(78, 400, ListShape::Uniform))),
        Box::new(Lzw::figure7(79, 250)),
        Box::new(Perceptron::figure7(80, 10, 96, 4)),
        Box::new(Mcf::new(Tree::random(81, 7, 2, 3, 180, 40), 2)),
        Box::new(Vpr::standard(82, 7, 3, 2)),
        Box::new(Bzip2::new(capsule::workloads::datasets::lzw_text(83, 120, 6), 2)),
        Box::new(Crafty::new(Tree::random(84, 6, 2, 3, 120, 30), 4)),
    ]
}

fn machine_for(variant: Variant) -> MachineConfig {
    match variant {
        Variant::Sequential => MachineConfig::table1_superscalar(),
        Variant::Static(_) => MachineConfig::table1_smt(),
        Variant::Component => MachineConfig::table1_somt(),
    }
}

fn assert_invariants(name: &str, o: &SimOutcome) {
    let s = &o.stats;
    assert_eq!(
        s.divisions_requested,
        s.divisions_granted()
            + s.divisions_denied_no_resource
            + s.divisions_denied_throttled
            + s.divisions_denied_disabled,
        "{name}: division accounting must balance"
    );
    assert!(s.deaths <= s.divisions_granted() + o.tree.len() as u64, "{name}: deaths bounded");
    assert!(s.committed <= s.dispatched, "{name}: committed cannot exceed dispatched");
    assert!(s.cycles > 0 && s.committed > 0, "{name}: ran for real");
    assert!(
        s.max_live_workers <= 1 + 8 + 16 + s.divisions_requested,
        "{name}: live workers bounded by contexts + stack"
    );
    // Genealogy: births precede deaths, parents precede children.
    for node in o.tree.nodes() {
        if let Some(d) = node.death_cycle {
            assert!(d >= node.birth_cycle, "{name}: death before birth");
        }
        if let Some(p) = node.parent {
            assert!(
                o.tree.nodes()[p.index()].birth_cycle <= node.birth_cycle,
                "{name}: child born before parent"
            );
        }
    }
}

#[test]
fn every_workload_every_variant_is_correct() {
    for w in workloads() {
        for variant in [Variant::Sequential, Variant::Static(8), Variant::Component] {
            if !w.supports(variant) {
                continue;
            }
            let program = w.program(variant);
            program.validate().unwrap_or_else(|e| panic!("{} {variant:?}: {e}", w.name()));
            let cfg = machine_for(variant);
            let mut m = Machine::new(cfg, &program)
                .unwrap_or_else(|e| panic!("{} {variant:?}: {e}", w.name()));
            let o = m.run(BUDGET).unwrap_or_else(|e| panic!("{} {variant:?}: {e}", w.name()));
            w.check(&o.output).unwrap_or_else(|e| panic!("{} {variant:?}: {e}", w.name()));
            assert_invariants(w.name(), &o);
        }
    }
}

#[test]
fn component_variants_agree_with_reference_interpreter() {
    for w in workloads() {
        if w.name() == "perceptron" {
            // FP reduction order differs between schedules; covered by the
            // convergence-bound check in the matrix test above.
            continue;
        }
        let program = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &program).expect("machine");
        let machine_out = m.run(BUDGET).expect("machine run");
        let interp_out = Interp::new(&program, InterpConfig::default())
            .expect("interp")
            .run(BUDGET)
            .expect("interp run");
        let mi: Vec<i64> = machine_out.ints();
        let ii: Vec<i64> = interp_out.output.iter().filter_map(|v| v.as_int()).collect();
        assert_eq!(mi, ii, "{}: timing machine and interpreter disagree", w.name());
    }
}

#[test]
fn superscalar_smt_somt_form_a_speedup_ladder_on_dijkstra() {
    let w = Dijkstra::figure3(5, 200);
    let seq = {
        let mut m =
            Machine::new(MachineConfig::table1_superscalar(), &w.program(Variant::Sequential))
                .expect("machine");
        m.run(BUDGET).expect("runs").cycles()
    };
    let comp = {
        let mut m = Machine::new(MachineConfig::table1_somt(), &w.program(Variant::Component))
            .expect("machine");
        m.run(BUDGET).expect("runs").cycles()
    };
    assert!(comp < seq, "SOMT ({comp}) must beat superscalar ({seq})");
}

#[test]
fn division_latency_has_modest_impact() {
    // The paper's §5 sensitivity result: up to 200 cycles of division
    // latency changes performance by very little.
    let w = Dijkstra::figure3(9, 150);
    let p = w.program(Variant::Component);
    let mut cycles = Vec::new();
    for lat in [0u64, 200] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.division_latency = lat;
        let mut m = Machine::new(cfg, &p).expect("machine");
        let o = m.run(BUDGET).expect("runs");
        w.check(&o.output).expect("correct");
        cycles.push(o.cycles());
    }
    let ratio = cycles[1] as f64 / cycles[0] as f64;
    assert!(ratio < 1.25, "200-cycle division latency cost {ratio:.2}x, expected small");
}

#[test]
fn component_variants_are_correct_on_the_cmp() {
    // The §5 CMP extrapolation must preserve every workload's result.
    let cfg = MachineConfig::cmp_somt(4, 2);
    for w in workloads() {
        let program = w.program(Variant::Component);
        let mut m =
            Machine::new(cfg.clone(), &program).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let o = m.run(BUDGET).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        w.check(&o.output).unwrap_or_else(|e| panic!("{} on CMP: {e}", w.name()));
        assert_invariants(w.name(), &o);
    }
}
