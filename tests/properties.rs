//! Workspace property tests: arbitrary inputs through the full stack
//! (workload builder → CAP64 program → cycle-level machine) must match
//! the host reference, and the native runtime must match std.

use capsule::model::config::MachineConfig;
use capsule::rt::{capsule_sort, capsule_sum, RtConfig};
use capsule::sim::machine::Machine;
use capsule::workloads::datasets::Graph;
use capsule::workloads::dijkstra::Dijkstra;
use capsule::workloads::quicksort::QuickSort;
use capsule::workloads::{Variant, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The component QuickSort sorts arbitrary lists on the SOMT machine.
    #[test]
    fn simulated_quicksort_sorts_anything(
        values in prop::collection::vec(-1_000_000i64..1_000_000, 1..250),
    ) {
        let w = QuickSort::new(values);
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
        let o = m.run(10_000_000_000).expect("halts");
        prop_assert!(w.check(&o.output).is_ok());
    }

    /// Component Dijkstra matches the host shortest-path algorithm on
    /// arbitrary random graphs.
    #[test]
    fn simulated_dijkstra_matches_host(seed in 0u64..10_000, n in 10usize..80) {
        let w = Dijkstra::new(Graph::random(seed, n, 3, 32));
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
        let o = m.run(10_000_000_000).expect("halts");
        prop_assert!(w.check(&o.output).is_ok());
    }

    /// The native runtime's sort equals std's sort for any input and any
    /// policy.
    #[test]
    fn native_sort_matches_std(
        mut values in prop::collection::vec(any::<i32>(), 0..5_000),
        workers in 1usize..6,
        mode in 0u8..3,
    ) {
        let cfg = match mode {
            0 => RtConfig::never(),
            1 => RtConfig::always(workers),
            _ => RtConfig::somt_like(workers),
        };
        let mut expected = values.clone();
        expected.sort_unstable();
        capsule_sort(cfg, &mut values);
        prop_assert_eq!(values, expected);
    }

    /// The native reduction is exact for any input and any policy.
    #[test]
    fn native_sum_is_exact(
        values in prop::collection::vec(-1_000_000i64..1_000_000, 0..20_000),
        workers in 1usize..6,
    ) {
        let expected: i64 = values.iter().sum();
        for cfg in [RtConfig::never(), RtConfig::always(workers), RtConfig::somt_like(workers)] {
            let (got, stats) = capsule_sum(cfg, &values);
            prop_assert_eq!(got, expected);
            prop_assert!(stats.max_live as usize <= workers.max(1));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same component program produces the same answer under any
    /// division behaviour (the component contract: results are
    /// schedule-independent). Exercises Never / Greedy / GreedyThrottled
    /// and a 1-context machine.
    #[test]
    fn division_policy_never_changes_results(seed in 0u64..1000) {
        use capsule::model::config::DivisionMode;
        let w = Dijkstra::new(Graph::random(seed, 40, 3, 16));
        let p = w.program(Variant::Component);
        let mut reference: Option<Vec<i64>> = None;
        for (contexts, cores, mode) in [
            (1, 1, DivisionMode::Never),
            (8, 1, DivisionMode::Greedy),
            (8, 1, DivisionMode::GreedyThrottled),
            (3, 1, DivisionMode::GreedyThrottled),
            (8, 4, DivisionMode::GreedyThrottled), // CMP organisation
            (8, 8, DivisionMode::Greedy),
        ] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.contexts = contexts;
            cfg.cores = cores;
            cfg.division_mode = mode;
            let mut m = Machine::new(cfg, &p).expect("machine");
            let o = m.run(10_000_000_000).expect("halts");
            let ints = o.ints();
            match &reference {
                None => reference = Some(ints),
                Some(r) => prop_assert_eq!(r, &ints),
            }
        }
    }
}
