//! Workspace property tests: arbitrary inputs through the full stack
//! (workload builder → CAP64 program → cycle-level machine) must match
//! the host reference, and the native runtime must match std.
//!
//! Inputs are drawn from a fixed-seed [`capsule_core::rng`] stream, so
//! the suite is deterministic and hermetic. Build with `--features
//! props` for a much larger sweep.

use capsule::model::config::{DivisionMode, MachineConfig};
use capsule::rt::{capsule_sort, capsule_sum, RtConfig};
use capsule::sim::machine::Machine;
use capsule::workloads::datasets::Graph;
use capsule::workloads::dijkstra::Dijkstra;
use capsule::workloads::quicksort::QuickSort;
use capsule::workloads::{Variant, Workload};
use capsule_core::rng::{Rng, Xoshiro256StarStar};

fn cases(default: usize) -> usize {
    if cfg!(feature = "props") {
        default * 20
    } else {
        default
    }
}

/// The component QuickSort sorts arbitrary lists on the SOMT machine.
#[test]
fn simulated_quicksort_sorts_anything() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x90b_0001);
    for case in 0..cases(12) {
        let len = rng.usize_below(250) + 1;
        let values: Vec<i64> = (0..len).map(|_| rng.i64_range(-1_000_000, 1_000_000)).collect();
        let w = QuickSort::new(values);
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
        let o = m.run(10_000_000_000).expect("halts");
        assert!(w.check(&o.output).is_ok(), "case {case}");
    }
}

/// Component Dijkstra matches the host shortest-path algorithm on
/// arbitrary random graphs.
#[test]
fn simulated_dijkstra_matches_host() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x90b_0002);
    for case in 0..cases(12) {
        let seed = rng.u64_below(10_000);
        let n = rng.usize_below(70) + 10;
        let w = Dijkstra::new(Graph::random(seed, n, 3, 32));
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
        let o = m.run(10_000_000_000).expect("halts");
        assert!(w.check(&o.output).is_ok(), "case {case} (seed {seed}, n {n})");
    }
}

/// The native runtime's sort equals std's sort for any input and any
/// policy.
#[test]
fn native_sort_matches_std() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x90b_0003);
    for case in 0..cases(12) {
        let len = rng.usize_below(5_000);
        let mut values: Vec<i32> = (0..len).map(|_| rng.next_u32() as i32).collect();
        let workers = rng.usize_below(5) + 1;
        let cfg = match rng.u64_below(3) {
            0 => RtConfig::never(),
            1 => RtConfig::always(workers),
            _ => RtConfig::somt_like(workers),
        };
        let mut expected = values.clone();
        expected.sort_unstable();
        capsule_sort(cfg, &mut values);
        assert_eq!(values, expected, "case {case}");
    }
}

/// The native reduction is exact for any input and any policy.
#[test]
fn native_sum_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x90b_0004);
    for case in 0..cases(8) {
        let len = rng.usize_below(20_000);
        let values: Vec<i64> = (0..len).map(|_| rng.i64_range(-1_000_000, 1_000_000)).collect();
        let workers = rng.usize_below(5) + 1;
        let expected: i64 = values.iter().sum();
        for cfg in [RtConfig::never(), RtConfig::always(workers), RtConfig::somt_like(workers)] {
            let (got, stats) = capsule_sum(cfg, &values);
            assert_eq!(got, expected, "case {case}");
            assert!(stats.max_live as usize <= workers.max(1), "case {case}");
        }
    }
}

/// The same component program produces the same answer under any
/// division behaviour (the component contract: results are
/// schedule-independent). Exercises Never / Greedy / GreedyThrottled
/// and a 1-context machine.
#[test]
fn division_policy_never_changes_results() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x90b_0005);
    for case in 0..cases(6) {
        let seed = rng.u64_below(1000);
        let w = Dijkstra::new(Graph::random(seed, 40, 3, 16));
        let p = w.program(Variant::Component);
        let mut reference: Option<Vec<i64>> = None;
        for (contexts, cores, mode) in [
            (1, 1, DivisionMode::Never),
            (8, 1, DivisionMode::Greedy),
            (8, 1, DivisionMode::GreedyThrottled),
            (3, 1, DivisionMode::GreedyThrottled),
            (8, 4, DivisionMode::GreedyThrottled), // CMP organisation
            (8, 8, DivisionMode::Greedy),
        ] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.contexts = contexts;
            cfg.cores = cores;
            cfg.division_mode = mode;
            let mut m = Machine::new(cfg, &p).expect("machine");
            let o = m.run(10_000_000_000).expect("halts");
            let ints = o.ints();
            match &reference {
                None => reference = Some(ints),
                Some(r) => assert_eq!(r, &ints, "case {case} (seed {seed}, {mode:?})"),
            }
        }
    }
}
